package dmake_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mca/internal/dist"
	"mca/internal/dmake"
	"mca/internal/ids"
	"mca/internal/netsim"
	"mca/internal/node"
	"mca/internal/rpc"
)

// remoteFixture spreads the paper's makefile over three file servers:
// sources on one node, object files on another, the binary on a third.
type remoteFixture struct {
	net       *netsim.Network
	coord     *dist.Manager
	servers   map[string]*dmake.FSResource // by role
	placement map[string]ids.NodeID        // file -> node
	resources map[ids.NodeID]*dmake.FSResource
	maker     *dmake.RemoteMaker
}

func newRemoteFixture(t *testing.T) *remoteFixture {
	t.Helper()
	nw := netsim.New(netsim.Config{})
	t.Cleanup(nw.Close)
	opts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 400 * time.Millisecond}

	coordNode, err := node.New(nw, node.WithRPCOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coordNode.Stop)
	f := &remoteFixture{
		net:       nw,
		coord:     dist.NewManager(coordNode),
		servers:   make(map[string]*dmake.FSResource),
		placement: make(map[string]ids.NodeID),
		resources: make(map[ids.NodeID]*dmake.FSResource),
	}

	mkNode := func(role string) (*dmake.FSResource, ids.NodeID) {
		nd, err := node.New(nw, node.WithRPCOptions(opts))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(nd.Stop)
		res := dmake.NewFSResource(nd, dist.NewManager(nd))
		f.servers[role] = res
		f.resources[nd.ID()] = res
		return res, nd.ID()
	}

	srcRes, srcNode := mkNode("sources")
	objRes, objNode := mkNode("objects")
	binRes, binNode := mkNode("binary")

	stamp := int64(1)
	for _, src := range []string{"Test0.h", "Test1.h", "Test0.c", "Test1.c"} {
		srcRes.Provision(src, "src:"+src, stamp)
		f.placement[src] = srcNode
		stamp++
	}
	for _, obj := range []string{"Test0.o", "Test1.o"} {
		objRes.Provision(obj, "", 0)
		f.placement[obj] = objNode
	}
	binRes.Provision("Test", "", 0)
	f.placement["Test"] = binNode

	mf, err := dmake.ParseMakefile(dmake.PaperMakefile)
	if err != nil {
		t.Fatal(err)
	}
	f.maker = dmake.NewRemoteMaker(f.coord, mf, func(file string) ids.NodeID {
		return f.placement[file]
	})
	f.maker.InitStamp(stamp)
	return f
}

func (f *remoteFixture) snapshot(t *testing.T, file string) dmake.FileState {
	t.Helper()
	res := f.resources[f.placement[file]]
	st, ok := res.Snapshot(file)
	if !ok {
		t.Fatalf("file %q unknown at its node", file)
	}
	return st
}

func TestRemoteMakeFullBuild(t *testing.T) {
	f := newRemoteFixture(t)
	ctx := context.Background()

	report, err := f.maker.Make(ctx, "Test")
	if err != nil {
		t.Fatalf("Make: %v", err)
	}
	if len(report.Executed) != 3 {
		t.Fatalf("executed = %v", report.Executed)
	}
	if report.Executed[len(report.Executed)-1] != "Test" {
		t.Fatalf("Test must build last: %v", report.Executed)
	}
	bin := f.snapshot(t, "Test")
	if !strings.Contains(bin.Content, "cc -o Test") || !strings.Contains(bin.Content, "src:Test0.c") {
		t.Fatalf("binary content = %q", bin.Content)
	}
	// Timestamps consistent: binary newer than objects, objects newer
	// than sources.
	o0 := f.snapshot(t, "Test0.o")
	if bin.Stamp <= o0.Stamp {
		t.Fatalf("binary stamp %d <= object stamp %d", bin.Stamp, o0.Stamp)
	}
	src := f.snapshot(t, "Test0.c")
	if o0.Stamp <= src.Stamp {
		t.Fatalf("object stamp %d <= source stamp %d", o0.Stamp, src.Stamp)
	}
}

func TestRemoteMakeIncremental(t *testing.T) {
	f := newRemoteFixture(t)
	ctx := context.Background()

	if _, err := f.maker.Make(ctx, "Test"); err != nil {
		t.Fatal(err)
	}
	report, err := f.maker.Make(ctx, "Test")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Executed) != 0 {
		t.Fatalf("re-make executed %v", report.Executed)
	}
	if report.UpToDate != 3 {
		t.Fatalf("UpToDate = %d", report.UpToDate)
	}

	// Touch Test1.c (through a plain transaction): exactly Test1.o
	// and Test rebuild.
	err = f.coord.Run(ctx, func(txn *dist.Txn) error {
		return f.maker.WriteFile(ctx, txn, "Test1.c", "src:Test1.c v2")
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err = f.maker.Make(ctx, "Test")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Executed) != 2 || report.Executed[0] != "Test1.o" || report.Executed[1] != "Test" {
		t.Fatalf("executed = %v, want [Test1.o Test]", report.Executed)
	}
}

func TestRemoteMakeFailureKeepsBuiltObjects(t *testing.T) {
	// Requirement (iii) across the cluster: the linker fails, yet the
	// object files built at their node stay built.
	f := newRemoteFixture(t)
	ctx := context.Background()

	linkerDown := errors.New("linker down")
	f.maker.Compile = func(ctx context.Context, txn *dist.Txn, m *dmake.RemoteMaker, rule *dmake.Rule) error {
		if rule.Target == "Test" {
			return linkerDown
		}
		return dmake.SimulatedRemoteCompile(ctx, txn, m, rule)
	}
	if _, err := f.maker.Make(ctx, "Test"); !errors.Is(err, linkerDown) {
		t.Fatalf("Make = %v, want %v", err, linkerDown)
	}
	for _, obj := range []string{"Test0.o", "Test1.o"} {
		if st := f.snapshot(t, obj); st.Stamp == 0 {
			t.Fatalf("%s lost despite its constituent committing", obj)
		}
	}
	if st := f.snapshot(t, "Test"); st.Stamp != 0 {
		t.Fatalf("Test must not exist, stamp = %d", st.Stamp)
	}

	// Repair: only the link remains.
	f.maker.Compile = dmake.SimulatedRemoteCompile
	report, err := f.maker.Make(ctx, "Test")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Executed) != 1 || report.Executed[0] != "Test" {
		t.Fatalf("executed = %v, want [Test]", report.Executed)
	}
}

func TestRemoteMakeProtectsFilesMidRun(t *testing.T) {
	// Requirement (ii) across the cluster: while the make runs, the
	// files it used cannot be modified by other programs, at any node.
	f := newRemoteFixture(t)
	ctx := context.Background()

	gate := make(chan struct{})
	proceed := make(chan struct{})
	f.maker.Compile = func(ctx context.Context, txn *dist.Txn, m *dmake.RemoteMaker, rule *dmake.Rule) error {
		if rule.Target == "Test" {
			close(gate)
			<-proceed
		}
		return dmake.SimulatedRemoteCompile(ctx, txn, m, rule)
	}

	result := make(chan error, 1)
	go func() {
		_, err := f.maker.Make(ctx, "Test")
		result <- err
	}()
	<-gate

	// An outside transaction cannot modify a source the build read.
	err := f.coord.Run(ctx, func(txn *dist.Txn) error {
		return f.maker.WriteFile(ctx, txn, "Test0.c", "tampered")
	})
	if err == nil {
		t.Fatal("outside write to a read source must be blocked mid-make")
	}
	// Nor a built object file at another node.
	err = f.coord.Run(ctx, func(txn *dist.Txn) error {
		return f.maker.WriteFile(ctx, txn, "Test0.o", "tampered")
	})
	if err == nil {
		t.Fatal("outside write to a built object must be blocked mid-make")
	}

	close(proceed)
	if err := <-result; err != nil {
		t.Fatalf("Make: %v", err)
	}

	// Free afterwards.
	err = f.coord.Run(ctx, func(txn *dist.Txn) error {
		return f.maker.WriteFile(ctx, txn, "Test0.c", "src:Test0.c v2")
	})
	if err != nil {
		t.Fatalf("write after make: %v", err)
	}
}

func TestRemoteMakeMissingSource(t *testing.T) {
	f := newRemoteFixture(t)
	ctx := context.Background()
	// Zero out a source's stamp to simulate absence.
	f.servers["sources"].Provision("Test0.c", "", 0)
	if _, err := f.maker.Make(ctx, "Test"); err == nil {
		t.Fatal("make with a missing source must fail")
	}
}
