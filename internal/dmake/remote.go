package dmake

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"mca/internal/action"
	"mca/internal/dist"
	"mca/internal/ids"
	"mca/internal/node"
	"mca/internal/object"
	"mca/internal/rpc"
)

// This file distributes example (iv): the files live on different nodes
// (an FSResource per node) and a make run is a distributed serializing
// action — every recipe execution is a two-phase-commit constituent
// whose effects are permanent at its own commit, while the files it
// used stay locked cluster-wide (per-node containers) until the run
// ends. Timestamps are assigned by the coordinating maker, so stamp
// comparison is meaningful across nodes.

// FSResourceName is the resource name file servers register under.
const FSResourceName = "dmakefs"

// ErrRemoteFile is returned for remote file protocol failures.
var ErrRemoteFile = errors.New("dmake: remote file error")

// FSResource hosts a set of files on one node.
type FSResource struct {
	mu    sync.Mutex
	files map[string]*object.Managed[FileState]
}

var _ node.Service = (*FSResource)(nil)

// NewFSResource builds an empty file server and installs it on the node
// and its distributed-action manager.
func NewFSResource(nd *node.Node, mgr *dist.Manager) *FSResource {
	r := &FSResource{files: make(map[string]*object.Managed[FileState])}
	nd.Host(r)
	mgr.RegisterResource(FSResourceName, r)
	return r
}

// Register implements node.Service.
func (r *FSResource) Register(*node.Node, *rpc.Peer) {}

// Recover implements node.Service.
func (r *FSResource) Recover(context.Context, *node.Node) {}

// Provision creates a file outside any action (setup time). Stamp 0
// marks a target placeholder that has never been built.
func (r *FSResource) Provision(name, content string, stamp int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.files[name] = object.New(FileState{Content: content, Stamp: stamp})
}

// Snapshot returns the file's current state without locking (tests).
func (r *FSResource) Snapshot(name string) (FileState, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.files[name]
	if !ok {
		return FileState{}, false
	}
	return m.Peek(), true
}

func (r *FSResource) file(name string) (*object.Managed[FileState], error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: no such file %q", ErrRemoteFile, name)
	}
	return m, nil
}

// Wire types of the file protocol.
type fileReadArg struct {
	Name string `json:"name"`
}

type fileReadResp struct {
	Content string `json:"content"`
	Stamp   int64  `json:"stamp"`
}

type fileWriteArg struct {
	Name    string `json:"name"`
	Content string `json:"content"`
	Stamp   int64  `json:"stamp"`
}

// Invoke implements dist.Resource.
func (r *FSResource) Invoke(a *action.Action, op string, arg []byte) ([]byte, error) {
	switch op {
	case "read":
		var in fileReadArg
		if err := json.Unmarshal(arg, &in); err != nil {
			return nil, err
		}
		m, err := r.file(in.Name)
		if err != nil {
			return nil, err
		}
		var out fileReadResp
		if err := m.Read(a, func(v FileState) error {
			out.Content, out.Stamp = v.Content, v.Stamp
			return nil
		}); err != nil {
			return nil, err
		}
		return json.Marshal(out)
	case "write":
		var in fileWriteArg
		if err := json.Unmarshal(arg, &in); err != nil {
			return nil, err
		}
		m, err := r.file(in.Name)
		if err != nil {
			return nil, err
		}
		if err := m.Write(a, func(v *FileState) error {
			v.Content = in.Content
			v.Stamp = in.Stamp
			return nil
		}); err != nil {
			return nil, err
		}
		return []byte("{}"), nil
	default:
		return nil, fmt.Errorf("%w: unknown op %q", ErrRemoteFile, op)
	}
}

// RemoteCompileFunc executes one rule's recipe within the given
// constituent transaction.
type RemoteCompileFunc func(ctx context.Context, txn *dist.Txn, m *RemoteMaker, rule *Rule) error

// RemoteMaker coordinates distributed makes: the makefile's files are
// spread over nodes per the locate function.
type RemoteMaker struct {
	mgr    *dist.Manager
	mf     *Makefile
	locate func(file string) ids.NodeID

	// Compile executes recipes; defaults to SimulatedRemoteCompile.
	Compile RemoteCompileFunc

	clock atomic.Int64
}

// NewRemoteMaker builds a maker coordinating through mgr; locate names
// the node hosting each file.
func NewRemoteMaker(mgr *dist.Manager, mf *Makefile, locate func(string) ids.NodeID) *RemoteMaker {
	return &RemoteMaker{mgr: mgr, mf: mf, locate: locate, Compile: SimulatedRemoteCompile}
}

// Stamp returns a fresh coordinator-assigned timestamp.
func (m *RemoteMaker) Stamp() int64 { return m.clock.Add(1) }

// InitStamp seeds the clock above any provisioned stamps.
func (m *RemoteMaker) InitStamp(min int64) {
	for {
		cur := m.clock.Load()
		if cur >= min || m.clock.CompareAndSwap(cur, min) {
			return
		}
	}
}

// ReadFile reads a remote file within the transaction.
func (m *RemoteMaker) ReadFile(ctx context.Context, txn *dist.Txn, name string) (FileState, error) {
	var out fileReadResp
	err := txn.Invoke(ctx, m.locate(name), FSResourceName, "read", fileReadArg{Name: name}, &out)
	if err != nil {
		return FileState{}, err
	}
	return FileState{Content: out.Content, Stamp: out.Stamp}, nil
}

// WriteFile writes a remote file within the transaction, assigning a
// fresh stamp.
func (m *RemoteMaker) WriteFile(ctx context.Context, txn *dist.Txn, name, content string) error {
	return txn.Invoke(ctx, m.locate(name), FSResourceName, "write",
		fileWriteArg{Name: name, Content: content, Stamp: m.Stamp()}, nil)
}

// SimulatedRemoteCompile mirrors SimulatedCompile over the cluster.
func SimulatedRemoteCompile(ctx context.Context, txn *dist.Txn, m *RemoteMaker, rule *Rule) error {
	parts := make([]string, 0, len(rule.Prereqs))
	for _, p := range rule.Prereqs {
		st, err := m.ReadFile(ctx, txn, p)
		if err != nil {
			return err
		}
		parts = append(parts, st.Content)
	}
	content := rule.Recipe + "("
	for i, p := range parts {
		if i > 0 {
			content += "+"
		}
		content += p
	}
	content += ")"
	return m.WriteFile(ctx, txn, rule.Target, content)
}

// remoteRun is the state of one distributed Make invocation.
type remoteRun struct {
	m       *RemoteMaker
	serial  *dist.RemoteSerializing
	ctx     context.Context
	targets sync.Map // string -> *targetState

	executedMu sync.Mutex
	executed   []string
	upToDate   atomic.Int64
}

// Make brings target up to date across the cluster under one
// distributed serializing action.
func (m *RemoteMaker) Make(ctx context.Context, target string) (*Report, error) {
	s, err := m.mgr.BeginRemoteSerializing()
	if err != nil {
		return nil, err
	}
	run := &remoteRun{m: m, serial: s, ctx: ctx}
	makeErr := run.make(target)

	var endErr error
	if makeErr != nil {
		endErr = s.Cancel(ctx)
	} else {
		endErr = s.End(ctx)
	}
	report := &Report{UpToDate: int(run.upToDate.Load())}
	run.executedMu.Lock()
	report.Executed = append(report.Executed, run.executed...)
	run.executedMu.Unlock()
	if makeErr != nil {
		return report, makeErr
	}
	return report, endErr
}

func (r *remoteRun) make(target string) error {
	stAny, _ := r.targets.LoadOrStore(target, &targetState{done: make(chan struct{})})
	st := stAny.(*targetState)
	st.once.Do(func() {
		defer close(st.done)
		st.err = r.build(target)
	})
	<-st.done
	return st.err
}

func (r *remoteRun) build(target string) error {
	rule := r.m.mf.Rule(target)

	// Phase (i): prerequisites concurrently.
	if rule != nil && len(rule.Prereqs) > 0 {
		errs := make(chan error, len(rule.Prereqs))
		for _, p := range rule.Prereqs {
			go func() { errs <- r.make(p) }()
		}
		var firstErr error
		for range rule.Prereqs {
			if err := <-errs; err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if firstErr != nil {
			return firstErr
		}
	}

	// Phases (ii)-(iv) as one distributed constituent.
	return r.serial.RunConstituent(r.ctx, func(txn *dist.Txn) error {
		if rule == nil {
			// Source file: must exist (stamp > 0); reading it under
			// the constituent also retains it for the run.
			st, err := r.m.ReadFile(r.ctx, txn, target)
			if err != nil {
				return err
			}
			if st.Stamp == 0 {
				return fmt.Errorf("dmake: source %q missing", target)
			}
			return nil
		}
		targetState, err := r.m.ReadFile(r.ctx, txn, target)
		if err != nil {
			return err
		}
		need := targetState.Stamp == 0
		for _, p := range rule.Prereqs {
			ps, err := r.m.ReadFile(r.ctx, txn, p)
			if err != nil {
				return err
			}
			if ps.Stamp > targetState.Stamp {
				need = true
			}
		}
		if !need {
			r.upToDate.Add(1)
			return nil
		}
		if err := r.m.Compile(r.ctx, txn, r.m, rule); err != nil {
			return fmt.Errorf("dmake: recipe for %q: %w", target, err)
		}
		r.executedMu.Lock()
		r.executed = append(r.executed, target)
		r.executedMu.Unlock()
		return nil
	})
}
