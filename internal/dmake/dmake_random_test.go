package dmake_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mca/internal/action"
	"mca/internal/core"
	"mca/internal/dmake"
)

// randomDAG builds a layered random makefile: `layers` layers of
// `width` targets each; layer-0 nodes are source files; every target
// depends on 1-3 nodes of the previous layer.
func randomDAG(rng *rand.Rand, layers, width int) (makefile string, sources []string, top string) {
	var sb strings.Builder
	name := func(l, i int) string { return fmt.Sprintf("n_%d_%d", l, i) }

	for i := 0; i < width; i++ {
		sources = append(sources, name(0, i))
	}
	// The final target depends on the whole last layer.
	top = "top"
	sb.WriteString("top:")
	for i := 0; i < width; i++ {
		sb.WriteString(" " + name(layers-1, i))
	}
	sb.WriteString("\n\tlink top\n")

	for l := 1; l < layers; l++ {
		for i := 0; i < width; i++ {
			deps := map[string]struct{}{name(l-1, rng.Intn(width)): {}}
			for d := 0; d < rng.Intn(3); d++ {
				deps[name(l-1, rng.Intn(width))] = struct{}{}
			}
			sb.WriteString(name(l, i) + ":")
			for d := range deps {
				sb.WriteString(" " + d)
			}
			sb.WriteString(fmt.Sprintf("\n\tgen %s\n", name(l, i)))
		}
	}
	return sb.String(), sources, top
}

// reachable returns the set of rule targets reachable from goal.
func reachable(mf *dmake.Makefile, goal string) map[string]struct{} {
	out := make(map[string]struct{})
	var walk func(string)
	walk = func(cur string) {
		r := mf.Rule(cur)
		if r == nil {
			return
		}
		if _, seen := out[cur]; seen {
			return
		}
		out[cur] = struct{}{}
		for _, p := range r.Prereqs {
			walk(p)
		}
	}
	walk(goal)
	return out
}

func TestRandomDAGFullBuildIsConsistent(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			src, sources, top := randomDAG(rng, 4, 6)
			mf, err := dmake.ParseMakefile(src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			rt := core.NewRuntime()
			fs := dmake.NewFS(rt)
			for _, s := range sources {
				fs.Create(s, "src:"+s)
			}
			maker := dmake.NewMaker(fs, mf)

			report, err := maker.Make(top)
			if err != nil {
				t.Fatalf("make: %v", err)
			}
			live := reachable(mf, top)
			if got := len(report.Executed); got != len(live) {
				t.Fatalf("executed %d recipes, want %d (each reachable target once)", got, len(live))
			}
			for target := range live {
				if !maker.Consistent(target) {
					t.Fatalf("target %s inconsistent after full build", target)
				}
			}
		})
	}
}

func TestRandomDAGIncrementalRebuildIsMinimalAndCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	src, sources, top := randomDAG(rng, 4, 6)
	mf, err := dmake.ParseMakefile(src)
	if err != nil {
		t.Fatal(err)
	}
	rt := core.NewRuntime()
	fs := dmake.NewFS(rt)
	for _, s := range sources {
		fs.Create(s, "src:"+s)
	}
	maker := dmake.NewMaker(fs, mf)
	if _, err := maker.Make(top); err != nil {
		t.Fatal(err)
	}

	// Compute the affected cone of a touched source: every target
	// whose transitive prerequisites include it.
	dependsOn := func(target, source string) bool {
		var walk func(string) bool
		walk = func(cur string) bool {
			if cur == source {
				return true
			}
			r := mf.Rule(cur)
			if r == nil {
				return false
			}
			for _, p := range r.Prereqs {
				if walk(p) {
					return true
				}
			}
			return false
		}
		return walk(target)
	}

	for trial := 0; trial < 4; trial++ {
		touched := sources[rng.Intn(len(sources))]
		if err := rt.Run(func(a *action.Action) error {
			return fs.Write(a, touched, fmt.Sprintf("src:%s v%d", touched, trial+2))
		}); err != nil {
			t.Fatal(err)
		}

		live := reachable(mf, top)
		var cone []string
		for _, target := range mf.Targets() {
			if _, ok := live[target]; !ok {
				continue // unreachable from top: never built
			}
			if dependsOn(target, touched) {
				cone = append(cone, target)
			}
		}

		report, err := maker.Make(top)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(report.Executed), len(cone); got != want {
			t.Fatalf("touched %s: rebuilt %d targets %v, want the %d-target cone %v",
				touched, got, report.Executed, want, cone)
		}
		rebuilt := make(map[string]struct{}, len(report.Executed))
		for _, x := range report.Executed {
			rebuilt[x] = struct{}{}
		}
		for _, c := range cone {
			if _, ok := rebuilt[c]; !ok {
				t.Fatalf("cone member %s not rebuilt (rebuilt %v)", c, report.Executed)
			}
		}
		for target := range live {
			if !maker.Consistent(target) {
				t.Fatalf("target %s inconsistent after incremental build", target)
			}
		}
	}
}

func TestRandomDAGFailureLeavesBuiltSubtreeConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src, sources, top := randomDAG(rng, 4, 5)
	mf, err := dmake.ParseMakefile(src)
	if err != nil {
		t.Fatal(err)
	}
	rt := core.NewRuntime()
	fs := dmake.NewFS(rt)
	for _, s := range sources {
		fs.Create(s, "src:"+s)
	}
	maker := dmake.NewMaker(fs, mf)

	// Fail the final link.
	maker.Compile = func(a *action.Action, f *dmake.FS, rule *dmake.Rule) error {
		if rule.Target == top {
			return fmt.Errorf("injected failure")
		}
		return dmake.SimulatedCompile(a, f, rule)
	}
	if _, err := maker.Make(top); err == nil {
		t.Fatal("expected the injected failure")
	}
	// Every built (reachable, non-top) target must be consistent.
	for target := range reachable(mf, top) {
		if target == top {
			continue
		}
		if !maker.Consistent(target) {
			t.Fatalf("target %s lost consistency in the failed run", target)
		}
	}
	// Repair and finish: exactly top rebuilds.
	maker.Compile = dmake.SimulatedCompile
	report, err := maker.Make(top)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Executed) != 1 || report.Executed[0] != top {
		t.Fatalf("executed = %v, want [%s]", report.Executed, top)
	}
}

func FuzzParseMakefile(f *testing.F) {
	f.Add(dmake.PaperMakefile)
	f.Add("a: b c\n\tcmd\nb:\n\tgen\nc:\n\tgen\n")
	f.Add(": bad\n")
	f.Add("x: x\n")
	f.Add("t:\n\tr1\n\tr2\n")
	f.Fuzz(func(t *testing.T, src string) {
		mf, err := dmake.ParseMakefile(src)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		// Parsed makefiles expose a coherent surface.
		if mf.DefaultTarget() == "" {
			t.Fatal("parsed makefile with empty default target")
		}
		for _, target := range mf.Targets() {
			if mf.Rule(target) == nil {
				t.Fatalf("target %q listed but has no rule", target)
			}
		}
	})
}
