package dmake

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrBadMakefile is returned for syntactically invalid makefiles.
var ErrBadMakefile = errors.New("dmake: bad makefile")

// ErrCycle is returned when the dependency graph is cyclic.
var ErrCycle = errors.New("dmake: dependency cycle")

// Rule is one makefile rule: a target, its prerequisite files, and the
// recipe that reestablishes the target's consistency.
type Rule struct {
	Target  string
	Prereqs []string
	Recipe  string
}

// Makefile is a parsed dependency description.
type Makefile struct {
	rules map[string]*Rule
	order []string // targets in file order
}

// ParseMakefile parses the subset of make syntax the paper's example
// uses: "target: prereq..." lines, each followed by optional
// tab-indented recipe lines (joined with "; "), plus blank lines and
// '#' comments.
func ParseMakefile(src string) (*Makefile, error) {
	mf := &Makefile{rules: make(map[string]*Rule)}
	var current *Rule
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimRight(raw, " \r")
		switch {
		case strings.TrimSpace(line) == "" || strings.HasPrefix(strings.TrimSpace(line), "#"):
			continue
		case strings.HasPrefix(line, "\t"):
			if current == nil {
				return nil, fmt.Errorf("%w: line %d: recipe before any rule", ErrBadMakefile, lineNo+1)
			}
			cmd := strings.TrimSpace(line)
			if current.Recipe == "" {
				current.Recipe = cmd
			} else {
				current.Recipe += "; " + cmd
			}
		default:
			colon := strings.Index(line, ":")
			if colon < 0 {
				return nil, fmt.Errorf("%w: line %d: expected 'target: prereqs'", ErrBadMakefile, lineNo+1)
			}
			target := strings.TrimSpace(line[:colon])
			if target == "" {
				return nil, fmt.Errorf("%w: line %d: empty target", ErrBadMakefile, lineNo+1)
			}
			if _, dup := mf.rules[target]; dup {
				return nil, fmt.Errorf("%w: line %d: duplicate rule for %q", ErrBadMakefile, lineNo+1, target)
			}
			rule := &Rule{Target: target, Prereqs: strings.Fields(line[colon+1:])}
			mf.rules[target] = rule
			mf.order = append(mf.order, target)
			current = rule
		}
	}
	if len(mf.order) == 0 {
		return nil, fmt.Errorf("%w: no rules", ErrBadMakefile)
	}
	if err := mf.checkAcyclic(); err != nil {
		return nil, err
	}
	return mf, nil
}

func (mf *Makefile) checkAcyclic() error {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(mf.rules))
	var visit func(string, []string) error
	visit = func(t string, path []string) error {
		switch state[t] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("%w: %s", ErrCycle, strings.Join(append(path, t), " -> "))
		}
		state[t] = visiting
		if r := mf.rules[t]; r != nil {
			for _, p := range r.Prereqs {
				if err := visit(p, append(path, t)); err != nil {
					return err
				}
			}
		}
		state[t] = done
		return nil
	}
	for _, t := range mf.order {
		if err := visit(t, nil); err != nil {
			return err
		}
	}
	return nil
}

// Rule returns the rule for a target, or nil for source files.
func (mf *Makefile) Rule(target string) *Rule { return mf.rules[target] }

// DefaultTarget returns the first rule's target, like make.
func (mf *Makefile) DefaultTarget() string { return mf.order[0] }

// Targets returns every target with a rule, sorted.
func (mf *Makefile) Targets() []string {
	out := make([]string, 0, len(mf.rules))
	for t := range mf.rules {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Sources returns every prerequisite that has no rule (leaf files),
// sorted.
func (mf *Makefile) Sources() []string {
	seen := make(map[string]struct{})
	var out []string
	for _, r := range mf.rules {
		for _, p := range r.Prereqs {
			if mf.rules[p] != nil {
				continue
			}
			if _, dup := seen[p]; dup {
				continue
			}
			seen[p] = struct{}{}
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// PaperMakefile is the makefile of paper §4 (iv), used by tests,
// examples and the experiment harness.
const PaperMakefile = `Test: Test0.o Test1.o
	cc -o Test Test0.o Test1.o
Test0.o: Test0.h Test1.h Test0.c
	cc -c Test0.c
Test1.o: Test1.h Test1.c
	cc -c Test1.c
`
