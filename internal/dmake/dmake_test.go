package dmake_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mca/internal/action"
	"mca/internal/colour"
	"mca/internal/dmake"
	"mca/internal/lock"
	"mca/internal/object"
	"mca/internal/store"
)

// paperFS builds the source tree of the paper's makefile.
func paperFS(rt *action.Runtime, opts ...object.Option) *dmake.FS {
	fs := dmake.NewFS(rt, opts...)
	for _, src := range []string{"Test0.h", "Test1.h", "Test0.c", "Test1.c"} {
		fs.Create(src, "src:"+src)
	}
	return fs
}

func mustParse(t *testing.T, src string) *dmake.Makefile {
	t.Helper()
	mf, err := dmake.ParseMakefile(src)
	if err != nil {
		t.Fatalf("ParseMakefile: %v", err)
	}
	return mf
}

func TestParseMakefile(t *testing.T) {
	mf := mustParse(t, dmake.PaperMakefile)
	if got := mf.DefaultTarget(); got != "Test" {
		t.Fatalf("DefaultTarget = %q", got)
	}
	rule := mf.Rule("Test0.o")
	if rule == nil {
		t.Fatal("no rule for Test0.o")
	}
	wantPrereqs := []string{"Test0.h", "Test1.h", "Test0.c"}
	if len(rule.Prereqs) != len(wantPrereqs) {
		t.Fatalf("prereqs = %v", rule.Prereqs)
	}
	for i, p := range wantPrereqs {
		if rule.Prereqs[i] != p {
			t.Fatalf("prereqs = %v, want %v", rule.Prereqs, wantPrereqs)
		}
	}
	if rule.Recipe != "cc -c Test0.c" {
		t.Fatalf("recipe = %q", rule.Recipe)
	}
	sources := mf.Sources()
	if len(sources) != 4 {
		t.Fatalf("sources = %v", sources)
	}
}

func TestParseMakefileErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want error
	}{
		{"empty", "", dmake.ErrBadMakefile},
		{"recipe first", "\tcc -c x.c\n", dmake.ErrBadMakefile},
		{"no colon", "Test Test0.o\n", dmake.ErrBadMakefile},
		{"empty target", ": a b\n", dmake.ErrBadMakefile},
		{"duplicate", "a: b\na: c\n", dmake.ErrBadMakefile},
		{"cycle", "a: b\nb: a\n", dmake.ErrCycle},
		{"self cycle", "a: a\n", dmake.ErrCycle},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := dmake.ParseMakefile(tt.src); !errors.Is(err, tt.want) {
				t.Fatalf("ParseMakefile = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestMakeBuildsEverythingOnce(t *testing.T) {
	rt := action.NewRuntime()
	fs := paperFS(rt)
	maker := dmake.NewMaker(fs, mustParse(t, dmake.PaperMakefile))

	report, err := maker.Make("Test")
	if err != nil {
		t.Fatalf("Make: %v", err)
	}
	if len(report.Executed) != 3 {
		t.Fatalf("executed = %v", report.Executed)
	}
	// Dependency order: Test last.
	if report.Executed[2] != "Test" {
		t.Fatalf("Test must build last: %v", report.Executed)
	}
	if !maker.Consistent("Test") {
		t.Fatalf("Test inconsistent after make: %v", maker.InconsistentTargets())
	}
	got, ok := fs.Snapshot("Test")
	if !ok {
		t.Fatal("Test missing")
	}
	if !strings.Contains(got.Content, "cc -o Test") {
		t.Fatalf("content = %q", got.Content)
	}
}

func TestMakeIsIncremental(t *testing.T) {
	rt := action.NewRuntime()
	fs := paperFS(rt)
	maker := dmake.NewMaker(fs, mustParse(t, dmake.PaperMakefile))

	if _, err := maker.Make("Test"); err != nil {
		t.Fatal(err)
	}
	// Nothing changed: second run executes nothing.
	report, err := maker.Make("Test")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Executed) != 0 {
		t.Fatalf("re-make executed %v", report.Executed)
	}
	if report.UpToDate != 3 {
		t.Fatalf("UpToDate = %d", report.UpToDate)
	}

	// Touch Test1.c: exactly Test1.o and Test rebuild.
	if err := rt.Run(func(a *action.Action) error {
		return fs.Write(a, "Test1.c", "src:Test1.c v2")
	}); err != nil {
		t.Fatal(err)
	}
	report, err = maker.Make("Test")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Executed) != 2 {
		t.Fatalf("executed = %v, want [Test1.o Test]", report.Executed)
	}
	if report.Executed[0] != "Test1.o" || report.Executed[1] != "Test" {
		t.Fatalf("executed = %v", report.Executed)
	}
	if !maker.Consistent("Test") {
		t.Fatal("inconsistent after incremental make")
	}
}

func TestMakeConcurrentPrerequisites(t *testing.T) {
	// Fig 8: Test0.o and Test1.o are made concurrently. With a
	// work delay, both recipes must overlap.
	rt := action.NewRuntime()
	fs := paperFS(rt)
	maker := dmake.NewMaker(fs, mustParse(t, dmake.PaperMakefile))
	maker.WorkDelay = 30 * time.Millisecond

	report, err := maker.Make("Test")
	if err != nil {
		t.Fatal(err)
	}
	if report.MaxParallel < 2 {
		t.Fatalf("MaxParallel = %d, want >= 2 (concurrent constituents)", report.MaxParallel)
	}
}

func TestFailedMakeKeepsCompletedTargets(t *testing.T) {
	// Requirement (iii): if dmake fails, files already made consistent
	// remain so.
	rt := action.NewRuntime()
	fs := paperFS(rt)
	maker := dmake.NewMaker(fs, mustParse(t, dmake.PaperMakefile))

	boom := errors.New("compiler segfault")
	maker.Compile = func(a *action.Action, fs *dmake.FS, rule *dmake.Rule) error {
		if rule.Target == "Test" {
			return boom
		}
		return dmake.SimulatedCompile(a, fs, rule)
	}
	_, err := maker.Make("Test")
	if !errors.Is(err, boom) {
		t.Fatalf("Make = %v, want %v", err, boom)
	}

	// The object files were made consistent and survive.
	for _, target := range []string{"Test0.o", "Test1.o"} {
		if !maker.Consistent(target) {
			t.Fatalf("%s must stay consistent after failed run", target)
		}
	}
	if fs.Exists("Test") {
		t.Fatal("Test must not exist (its recipe aborted)")
	}

	// A repaired compiler finishes the job, rebuilding only Test.
	maker.Compile = dmake.SimulatedCompile
	report, err := maker.Make("Test")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Executed) != 1 || report.Executed[0] != "Test" {
		t.Fatalf("executed = %v, want [Test]", report.Executed)
	}
	if !maker.Consistent("Test") {
		t.Fatal("Test inconsistent after repair")
	}
}

func TestFilesLockedAgainstOutsideModificationDuringMake(t *testing.T) {
	// Requirement (ii): while dmake runs, the files it used stay
	// protected. After a recipe's constituent commits, the container
	// holds locks on the files it read and wrote.
	rt := action.NewRuntime(action.WithMaxLockWait(30 * time.Millisecond))
	fs := paperFS(rt)
	maker := dmake.NewMaker(fs, mustParse(t, dmake.PaperMakefile))

	gate := make(chan struct{})
	proceed := make(chan struct{})
	maker.Compile = func(a *action.Action, f *dmake.FS, rule *dmake.Rule) error {
		if rule.Target == "Test" {
			close(gate) // object files are built, final link in progress
			<-proceed
		}
		return dmake.SimulatedCompile(a, f, rule)
	}

	result := make(chan error, 1)
	go func() {
		_, err := maker.Make("Test")
		result <- err
	}()
	<-gate

	// Mid-make: an outside program cannot modify a source file the
	// build read, nor a built object file.
	outsider, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Write(outsider, "Test0.c", "tampered"); err == nil {
		t.Fatal("outside write to Test0.c must be blocked during make")
	}
	obj, _ := fs.Object("Test0.o")
	if err := outsider.TryLock(obj.ObjectID(), lock.Write, colour.None); !errors.Is(err, lock.ErrConflict) {
		t.Fatalf("outside lock of Test0.o = %v, want ErrConflict", err)
	}
	_ = outsider.Abort()

	close(proceed)
	if err := <-result; err != nil {
		t.Fatalf("Make: %v", err)
	}

	// After the make ends everything is free again.
	after, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Write(after, "Test0.c", "src:Test0.c v2"); err != nil {
		t.Fatalf("write after make: %v", err)
	}
	_ = after.Abort()
}

func TestMakeMissingSource(t *testing.T) {
	rt := action.NewRuntime()
	fs := dmake.NewFS(rt) // no sources at all
	maker := dmake.NewMaker(fs, mustParse(t, dmake.PaperMakefile))
	if _, err := maker.Make("Test"); err == nil {
		t.Fatal("make without sources must fail")
	}
}

func TestMakeUnknownTarget(t *testing.T) {
	rt := action.NewRuntime()
	fs := paperFS(rt)
	maker := dmake.NewMaker(fs, mustParse(t, dmake.PaperMakefile))
	if _, err := maker.Make("Nonsense"); err == nil {
		t.Fatal("unknown target must fail")
	}
}

func TestMakePersistsProducts(t *testing.T) {
	rt := action.NewRuntime()
	st := store.NewStable()
	fs := paperFS(rt, object.WithStore(st))
	maker := dmake.NewMaker(fs, mustParse(t, dmake.PaperMakefile))

	if _, err := maker.Make("Test"); err != nil {
		t.Fatal(err)
	}
	testObj, ok := fs.Object("Test")
	if !ok {
		t.Fatal("Test object missing")
	}
	loaded, err := object.Load[dmake.FileState](testObj.ObjectID(), st)
	if err != nil {
		t.Fatalf("Test not in stable store: %v", err)
	}
	if loaded.Peek().Content != testObj.Peek().Content {
		t.Fatal("stable content mismatch")
	}
}

func TestDiamondDependencyBuildsOnce(t *testing.T) {
	// top depends on left and right, both depending on base.
	src := `top: left right
	link top
left: base
	cc left
right: base
	cc right
base: src
	gen base
`
	rt := action.NewRuntime()
	fs := dmake.NewFS(rt)
	fs.Create("src", "s0")
	maker := dmake.NewMaker(fs, mustParse(t, src))

	report, err := maker.Make("top")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Executed) != 4 {
		t.Fatalf("executed = %v, want each target once", report.Executed)
	}
	counts := make(map[string]int)
	for _, x := range report.Executed {
		counts[x]++
	}
	if counts["base"] != 1 {
		t.Fatalf("base built %d times", counts["base"])
	}
	if !maker.Consistent("top") {
		t.Fatal("top inconsistent")
	}
}

func TestDeepChainBuildsInOrder(t *testing.T) {
	var sb strings.Builder
	const depth = 12
	for i := depth; i >= 1; i-- {
		prev := "f0"
		if i > 1 {
			sb.WriteString("f")
			sb.WriteString(itoa(i))
			sb.WriteString(": f")
			sb.WriteString(itoa(i - 1))
			sb.WriteString("\n\tgen\n")
			continue
		}
		sb.WriteString("f1: " + prev + "\n\tgen\n")
	}
	rt := action.NewRuntime()
	fs := dmake.NewFS(rt)
	fs.Create("f0", "root")
	maker := dmake.NewMaker(fs, mustParse(t, sb.String()))

	report, err := maker.Make("f" + itoa(depth))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Executed) != depth {
		t.Fatalf("executed %d targets, want %d", len(report.Executed), depth)
	}
	for i := 1; i < len(report.Executed); i++ {
		// fK must come after fK-1: numeric suffixes strictly increase.
		prev, errP := atoi(strings.TrimPrefix(report.Executed[i-1], "f"))
		cur, errC := atoi(strings.TrimPrefix(report.Executed[i], "f"))
		if errP != nil || errC != nil || cur != prev+1 {
			t.Fatalf("build order wrong: %v", report.Executed)
		}
	}
}

func atoi(s string) (int, error) {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, errors.New("not a number")
		}
		n = n*10 + int(r-'0')
	}
	return n, nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestMaxWorkersBoundsParallelism(t *testing.T) {
	src := "all: a b c d\n\tlink\n" +
		"a: s\n\tcc\nb: s\n\tcc\nc: s\n\tcc\nd: s\n\tcc\n"
	rt := action.NewRuntime()
	fs := dmake.NewFS(rt)
	fs.Create("s", "src")
	maker := dmake.NewMaker(fs, mustParse(t, src))
	maker.WorkDelay = 15 * time.Millisecond
	maker.MaxWorkers = 1

	report, err := maker.Make("all")
	if err != nil {
		t.Fatal(err)
	}
	if report.MaxParallel != 1 {
		t.Fatalf("MaxParallel = %d with MaxWorkers=1", report.MaxParallel)
	}

	// Unbounded for contrast.
	rt2 := action.NewRuntime()
	fs2 := dmake.NewFS(rt2)
	fs2.Create("s", "src")
	maker2 := dmake.NewMaker(fs2, mustParse(t, src))
	maker2.WorkDelay = 15 * time.Millisecond
	report2, err := maker2.Make("all")
	if err != nil {
		t.Fatal(err)
	}
	if report2.MaxParallel < 2 {
		t.Fatalf("unbounded MaxParallel = %d, want >= 2", report2.MaxParallel)
	}
}

func TestFSNamesAndSnapshots(t *testing.T) {
	rt := action.NewRuntime()
	fs := dmake.NewFS(rt)
	fs.Create("a", "1")
	fs.Create("b", "2")
	if got := len(fs.Names()); got != 2 {
		t.Fatalf("Names = %d", got)
	}
	if _, ok := fs.Snapshot("missing"); ok {
		t.Fatal("Snapshot of missing file must report absent")
	}
	st, ok := fs.Snapshot("a")
	if !ok || st.Content != "1" || st.Stamp == 0 {
		t.Fatalf("Snapshot = %+v, %v", st, ok)
	}
}

func TestFSReadMissing(t *testing.T) {
	rt := action.NewRuntime()
	fs := dmake.NewFS(rt)
	a, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read(a, "ghost"); !errors.Is(err, dmake.ErrNoFile) {
		t.Fatalf("Read = %v, want ErrNoFile", err)
	}
	if stamp, err := fs.Stamp(a, "ghost"); err != nil || stamp != 0 {
		t.Fatalf("Stamp of missing = %d, %v; want 0, nil", stamp, err)
	}
	_ = a.Abort()
}

func TestFSRecreateAfterAbortedCreation(t *testing.T) {
	// A file created by an aborted action is gone; a later action can
	// create it again.
	rt := action.NewRuntime()
	fs := dmake.NewFS(rt)

	a, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Write(a, "new", "v1"); err != nil {
		t.Fatal(err)
	}
	if err := a.Abort(); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("new") {
		t.Fatal("aborted creation must not leave the file")
	}

	if err := rt.Run(func(b *action.Action) error {
		return fs.Write(b, "new", "v2")
	}); err != nil {
		t.Fatalf("recreate after aborted creation: %v", err)
	}
	st, ok := fs.Snapshot("new")
	if !ok || st.Content != "v2" {
		t.Fatalf("recreated = %+v, %v", st, ok)
	}
}

func TestFSStampsMonotonic(t *testing.T) {
	rt := action.NewRuntime()
	fs := dmake.NewFS(rt)
	fs.Create("f", "v0")
	first, _ := fs.Snapshot("f")
	for i := 0; i < 3; i++ {
		if err := rt.Run(func(a *action.Action) error {
			return fs.Write(a, "f", "v")
		}); err != nil {
			t.Fatal(err)
		}
		next, _ := fs.Snapshot("f")
		if next.Stamp <= first.Stamp {
			t.Fatalf("stamp did not advance: %d then %d", first.Stamp, next.Stamp)
		}
		first = next
	}
}
