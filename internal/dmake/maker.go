package dmake

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mca/internal/action"
	"mca/internal/clock"
	"mca/internal/structures"
)

// CompileFunc executes one rule's recipe under the given action: it must
// read prerequisites and write the target through the filesystem so that
// locking and recovery apply. The default simulates a compiler
// deterministically.
type CompileFunc func(a *action.Action, fs *FS, rule *Rule) error

// SimulatedCompile is the default recipe execution: the target's content
// becomes a deterministic function of the recipe and the prerequisites'
// contents, so tests can verify consistency of the build products.
func SimulatedCompile(a *action.Action, fs *FS, rule *Rule) error {
	parts := make([]string, 0, len(rule.Prereqs))
	for _, p := range rule.Prereqs {
		st, err := fs.Read(a, p)
		if err != nil {
			return err
		}
		parts = append(parts, st.Content)
	}
	content := rule.Recipe + "(" + strings.Join(parts, "+") + ")"
	return fs.Write(a, rule.Target, content)
}

// Report summarises one make run.
type Report struct {
	// Executed lists the targets whose recipes ran, in completion
	// order.
	Executed []string
	// UpToDate counts targets found consistent already.
	UpToDate int
	// MaxParallel is the highest number of recipes observed running
	// simultaneously.
	MaxParallel int
}

// Maker runs makes over a filesystem.
type Maker struct {
	fs *FS
	mf *Makefile

	// Compile executes recipes; defaults to SimulatedCompile.
	Compile CompileFunc
	// WorkDelay simulates per-recipe compile time (benchmarks).
	WorkDelay time.Duration
	// Clock paces WorkDelay sleeps; nil means clock.Real().
	Clock clock.Clock
	// MaxWorkers bounds concurrently running recipes, like make -j.
	// Zero means unbounded.
	MaxWorkers int
}

// NewMaker builds a maker for the filesystem and makefile.
func NewMaker(fs *FS, mf *Makefile) *Maker {
	return &Maker{fs: fs, mf: mf, Compile: SimulatedCompile}
}

// targetState coordinates concurrent makes of one target.
type targetState struct {
	once sync.Once
	done chan struct{}
	err  error
}

// makeRun is the state of one Make invocation.
type makeRun struct {
	m       *Maker
	serial  *structures.Serializing
	targets sync.Map // string -> *targetState
	// slots, when non-nil, is the -j semaphore bounding concurrently
	// executing recipes.
	slots chan struct{}

	executedMu sync.Mutex
	executed   []string
	upToDate   atomic.Int64
	running    atomic.Int64
	maxRunning atomic.Int64
}

// Make brings target up to date. The whole run is one serializing
// action: every rule execution is a constituent (permanent at its own
// commit), prerequisite subtrees build concurrently, and the files
// consulted stay protected from outside modification until the run
// ends. A failed run returns the error, but targets already made remain
// consistent — requirement (iii).
func (m *Maker) Make(target string) (*Report, error) {
	s, err := structures.BeginSerializing(m.fs.Runtime())
	if err != nil {
		return nil, err
	}
	run := &makeRun{m: m, serial: s}
	if m.MaxWorkers > 0 {
		run.slots = make(chan struct{}, m.MaxWorkers)
	}
	makeErr := run.make(target)

	var endErr error
	if makeErr != nil {
		endErr = s.Cancel()
	} else {
		endErr = s.End()
	}
	report := &Report{
		Executed:    run.executedList(),
		UpToDate:    int(run.upToDate.Load()),
		MaxParallel: int(run.maxRunning.Load()),
	}
	if makeErr != nil {
		return report, makeErr
	}
	return report, endErr
}

func (r *makeRun) executedList() []string {
	r.executedMu.Lock()
	defer r.executedMu.Unlock()
	out := make([]string, len(r.executed))
	copy(out, r.executed)
	return out
}

// make ensures one target is consistent; concurrent calls for the same
// target coalesce.
func (r *makeRun) make(target string) error {
	stAny, _ := r.targets.LoadOrStore(target, &targetState{done: make(chan struct{})})
	st := stAny.(*targetState)
	st.once.Do(func() {
		defer close(st.done)
		st.err = r.build(target)
	})
	<-st.done
	return st.err
}

func (r *makeRun) build(target string) error {
	rule := r.m.mf.Rule(target)
	if rule == nil {
		// A source file: it must exist; nothing to build.
		if !r.m.fs.Exists(target) {
			return fmt.Errorf("dmake: no rule to make target %q", target)
		}
		return nil
	}

	// Phase (i): ensure the consistency of prerequisite files,
	// concurrently (fig 8).
	if len(rule.Prereqs) > 0 {
		errs := make(chan error, len(rule.Prereqs))
		for _, p := range rule.Prereqs {
			go func() {
				errs <- r.make(p)
			}()
		}
		var firstErr error
		for range rule.Prereqs {
			if err := <-errs; err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if firstErr != nil {
			return firstErr
		}
	}

	// Phases (ii)-(iv): compare timestamps and (re)execute the
	// recipe, as one constituent of the serializing action.
	return r.serial.RunConstituent(func(a *action.Action) error {
		targetStamp, err := r.m.fs.Stamp(a, target)
		if err != nil {
			return err
		}
		need := targetStamp == 0
		for _, p := range rule.Prereqs {
			ps, err := r.m.fs.Stamp(a, p)
			if err != nil {
				return err
			}
			if ps > targetStamp {
				need = true
			}
		}
		if !need {
			r.upToDate.Add(1)
			return nil
		}

		if r.slots != nil {
			r.slots <- struct{}{}
			defer func() { <-r.slots }()
		}

		cur := r.running.Add(1)
		for {
			max := r.maxRunning.Load()
			if cur <= max || r.maxRunning.CompareAndSwap(max, cur) {
				break
			}
		}
		defer r.running.Add(-1)

		if d := r.m.WorkDelay; d > 0 {
			c := r.m.Clock
			if c == nil {
				c = clock.Real()
			}
			c.Sleep(d)
		}
		if err := r.m.Compile(a, r.m.fs, rule); err != nil {
			return fmt.Errorf("dmake: recipe for %q: %w", target, err)
		}
		r.executedMu.Lock()
		r.executed = append(r.executed, target)
		r.executedMu.Unlock()
		return nil
	})
}

// Consistent reports whether the target is consistent per the paper's
// definition: "a file is consistent if all the files it depends upon are
// consistent and were last changed earlier than the target file". It
// inspects current file states without locking (test assertions).
func (m *Maker) Consistent(target string) bool {
	rule := m.mf.Rule(target)
	st, ok := m.fs.Snapshot(target)
	if !ok {
		return false
	}
	if rule == nil {
		return true // source files are consistent by definition
	}
	for _, p := range rule.Prereqs {
		if !m.Consistent(p) {
			return false
		}
		ps, ok := m.fs.Snapshot(p)
		if !ok || ps.Stamp > st.Stamp {
			return false
		}
	}
	return true
}

// InconsistentTargets returns the targets that are not consistent,
// sorted (test helper).
func (m *Maker) InconsistentTargets() []string {
	var out []string
	for _, t := range m.mf.Targets() {
		if !m.Consistent(t) {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}
