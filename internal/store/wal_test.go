package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mca/internal/ids"
)

func testIntention(a ids.ActionID, payload string) Intention {
	obj := ids.NewObjectID()
	return Intention{
		Action: a,
		Status: IntentionPrepared,
		Writes: Batch{Writes: map[ids.ObjectID]State{obj: State(payload)}},
	}
}

func TestWALGroupCommitSharesForces(t *testing.T) {
	s := NewStable()
	s.WAL().SetForceDelay(2 * time.Millisecond)
	log := s.Intentions()

	const writers = 16
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, writers)
	actions := make([]ids.ActionID, writers)
	for i := 0; i < writers; i++ {
		actions[i] = ids.NewActionID()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			errs[i] = log.Record(testIntention(actions[i], "w"))
		}(i)
	}
	close(start)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("Record %d: %v", i, err)
		}
	}
	for _, a := range actions {
		if _, ok, _ := log.Lookup(a); !ok {
			t.Fatalf("record %v missing after force", a)
		}
	}
	flushes, records := s.WAL().Stats()
	if records != writers {
		t.Fatalf("records = %d, want %d", records, writers)
	}
	// 16 concurrent appenders against a 2ms force must share batches:
	// the first force takes the early arrivals, everyone else piles into
	// the next batch. A per-record log would pay 16 forces.
	if flushes >= records {
		t.Fatalf("flushes = %d for %d records: group commit never batched", flushes, records)
	}
}

func TestWALPerRecordBaselineForcesEach(t *testing.T) {
	s := NewStable()
	s.WAL().SetGroupCommit(false)
	log := s.Intentions()

	const n = 8
	for i := 0; i < n; i++ {
		if err := log.Record(testIntention(ids.NewActionID(), "w")); err != nil {
			t.Fatal(err)
		}
	}
	flushes, records := s.WAL().Stats()
	if flushes != n || records != n {
		t.Fatalf("per-record mode: flushes=%d records=%d, want %d each", flushes, records, n)
	}
}

func TestWALFilePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStableAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	keep := ids.NewActionID()
	drop := ids.NewActionID()
	if err := s.Intentions().Record(testIntention(keep, "keep")); err != nil {
		t.Fatal(err)
	}
	if err := s.Intentions().Record(testIntention(drop, "drop")); err != nil {
		t.Fatal(err)
	}
	if err := s.Intentions().Forget(drop); err != nil {
		t.Fatal(err)
	}

	// A different process opening the same directory must see exactly
	// the live records.
	s2, err := NewStableAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	pending, err := s2.Intentions().Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].Action != keep {
		t.Fatalf("Pending after reopen = %+v, want just %v", pending, keep)
	}
}

func TestWALFileRecoverReloadsFromDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStableAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := ids.NewActionID()
	if err := s.Intentions().Record(testIntention(a, "w")); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	if err := s.Intentions().Record(testIntention(ids.NewActionID(), "x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Record while crashed = %v, want ErrCrashed", err)
	}
	s.Recover()
	in, ok, err := s.Intentions().Lookup(a)
	if err != nil || !ok {
		t.Fatalf("Lookup after recover = %v, %v", ok, err)
	}
	if in.Status != IntentionPrepared {
		t.Fatalf("Status after recover = %v", in.Status)
	}
}

func TestWALCrashDuringForceFailsWaiters(t *testing.T) {
	for _, backing := range []string{"memory", "file"} {
		t.Run(backing, func(t *testing.T) {
			var s *Stable
			var err error
			if backing == "file" {
				s, err = NewStableAt(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
			} else {
				s = NewStable()
			}
			a := ids.NewActionID()
			s.CrashDuringNextForce()
			if err := s.Intentions().Record(testIntention(a, "w")); !errors.Is(err, ErrCrashed) {
				t.Fatalf("Record through crashing force = %v, want ErrCrashed", err)
			}
			if !s.Crashed() {
				t.Fatal("store must be crashed after the injected force crash")
			}
			s.Recover()
			// The batch never forced: the record must not exist after
			// recovery (presumed abort counts on exactly this).
			if _, ok, err := s.Intentions().Lookup(a); err != nil || ok {
				t.Fatalf("Lookup after recover = %v, %v; want absent", ok, err)
			}
		})
	}
}

func TestWALStaleBatchFailsAfterCrash(t *testing.T) {
	// A crash between append and force invalidates the open batch: the
	// force must report ErrCrashed instead of installing records on a
	// store that was down.
	s := NewStable()
	s.WAL().SetForceDelay(20 * time.Millisecond)
	a := ids.NewActionID()
	done := make(chan error, 1)
	go func() { done <- s.Intentions().Record(testIntention(a, "w")) }()
	time.Sleep(5 * time.Millisecond) // let the force begin
	s.Crash()
	if err := <-done; !errors.Is(err, ErrCrashed) {
		t.Fatalf("Record across crash = %v, want ErrCrashed", err)
	}
	s.Recover()
	if _, ok, _ := s.Intentions().Lookup(a); ok {
		t.Fatal("record from invalidated batch must not survive")
	}
}

func TestWALFileCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStableAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	keeper := ids.NewActionID()
	if err := s.Intentions().Record(testIntention(keeper, "keeper")); err != nil {
		t.Fatal(err)
	}

	// Churn record+forget pairs with the threshold lowered so the log
	// compacts repeatedly instead of growing without bound.
	payload := make([]byte, 200)
	for i := range payload {
		payload[i] = 'x'
	}
	for i := 0; i < 50; i++ {
		s.wal.file.compactAt = 1 << 10
		a := ids.NewActionID()
		if err := s.Intentions().Record(testIntention(a, string(payload))); err != nil {
			t.Fatal(err)
		}
		if err := s.Intentions().Forget(a); err != nil {
			t.Fatal(err)
		}
	}
	// Without compaction the churn leaves ~17KB of dead entries behind;
	// with it the log holds little more than the one live record.
	if s.wal.file.size > 4<<10 {
		t.Fatalf("log size %d still unbounded after churn", s.wal.file.size)
	}

	// Compaction must preserve exactly the live records, durably.
	s2, err := NewStableAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	pending, err := s2.Intentions().Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].Action != keeper {
		t.Fatalf("Pending after compaction+reopen = %+v, want just %v", pending, keeper)
	}
}

func TestWALDiscardsTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStableAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := ids.NewActionID()
	if err := s.Intentions().Record(testIntention(a, "w")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage after the last full line.
	f, err := os.OpenFile(filepath.Join(dir, walFilename), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"record","action":99,"in":`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := NewStableAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	pending, err := s2.Intentions().Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].Action != a {
		t.Fatalf("Pending with torn tail = %+v, want just %v", pending, a)
	}
}

func TestSyncDirOnDurablePaths(t *testing.T) {
	dir := t.TempDir()
	fs, _, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Every rename/remove that durability depends on must be followed by
	// a directory fsync, or the new directory entry can be lost to a
	// power failure even though the file data was synced.
	before := dirSyncs.Load()
	if err := fs.Write(ids.NewObjectID(), State("v")); err != nil {
		t.Fatal(err)
	}
	if dirSyncs.Load() <= before {
		t.Fatal("Write installed via rename without a directory fsync")
	}

	obj := ids.NewObjectID()
	before = dirSyncs.Load()
	if err := fs.ApplyBatch(Batch{Writes: map[ids.ObjectID]State{obj: State("b")}}); err != nil {
		t.Fatal(err)
	}
	if dirSyncs.Load() <= before {
		t.Fatal("ApplyBatch completed without a directory fsync")
	}

	before = dirSyncs.Load()
	if err := fs.Delete(obj); err != nil {
		t.Fatal(err)
	}
	if dirSyncs.Load() <= before {
		t.Fatal("Delete removed the entry without a directory fsync")
	}
}

func TestFileBackedStableCrashPoints(t *testing.T) {
	o1, o2 := ids.NewObjectID(), ids.NewObjectID()
	points := []struct {
		name      string
		point     CrashPoint
		committed bool // batch visible after recovery
	}{
		{"beforeJournal", CrashBeforeJournal, false},
		{"afterJournal", CrashAfterJournal, true},
		{"midApply", CrashMidApply, true},
	}
	for _, tt := range points {
		t.Run(tt.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := NewStableAt(dir)
			if err != nil {
				t.Fatal(err)
			}
			seed := Batch{Writes: map[ids.ObjectID]State{o1: State("old1"), o2: State("old2")}}
			if err := s.ApplyBatch(seed); err != nil {
				t.Fatal(err)
			}

			s.CrashDuringNextBatch(tt.point)
			next := Batch{Writes: map[ids.ObjectID]State{o1: State("new1"), o2: State("new2")}}
			if err := s.ApplyBatch(next); !errors.Is(err, ErrCrashed) {
				t.Fatalf("ApplyBatch at %s = %v, want ErrCrashed", tt.name, err)
			}
			s.Recover()

			check := func(label string, st Store) {
				want := map[ids.ObjectID]string{o1: "old1", o2: "old2"}
				if tt.committed {
					want = map[ids.ObjectID]string{o1: "new1", o2: "new2"}
				}
				for id, w := range want {
					got, err := st.Read(id)
					if err != nil {
						t.Fatalf("%s: Read(%v): %v", label, id, err)
					}
					if string(got) != w {
						t.Fatalf("%s: %v = %q, want %q (all-or-nothing violated)", label, id, got, w)
					}
				}
			}
			check("recovered", s)

			// The same must hold for a fresh open of the directory.
			s2, err := NewStableAt(dir)
			if err != nil {
				t.Fatal(err)
			}
			check("reopened", s2)
		})
	}
}

func TestFileBackedStableWritesThrough(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStableAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	id := ids.NewObjectID()
	if err := s.Write(id, State("v1")); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	s.Recover()
	got, err := s.Read(id)
	if err != nil || string(got) != "v1" {
		t.Fatalf("Read after crash = %q, %v", got, err)
	}
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	s.Recover()
	if _, err := s.Read(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Read after delete+crash = %v, want ErrNotFound", err)
	}
}

func TestWALWindowHoldsBatchOpen(t *testing.T) {
	s := NewStable()
	s.WAL().SetWindow(25 * time.Millisecond)
	log := s.Intentions()

	// Two records arriving within the window must share one force.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := log.Record(testIntention(ids.NewActionID(), "w")); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	flushes, records := s.WAL().Stats()
	if records != 2 {
		t.Fatalf("records = %d, want 2", records)
	}
	if flushes != 1 {
		t.Fatalf("flushes = %d, want 1 (window must batch near-simultaneous records)", flushes)
	}
}

func TestWALForgetIsDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStableAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := ids.NewActionID()
	if err := s.Intentions().Record(testIntention(a, "w")); err != nil {
		t.Fatal(err)
	}
	if err := s.Intentions().Forget(a); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	s.Recover()
	if _, ok, _ := s.Intentions().Lookup(a); ok {
		t.Fatal("forgotten record resurrected by recovery")
	}
}

func TestWALStatsStringer(t *testing.T) {
	// Keep the walOp wire constants stable: the on-disk log depends on
	// them.
	if got := fmt.Sprintf("%s/%s", walOpRecord, walOpForget); got != "record/forget" {
		t.Fatalf("walOp constants = %q", got)
	}
}
