// Per-node write-ahead log with group commit. The commit protocol's
// intention and decision records from every concurrent transaction on a
// node are appended to one logically-ordered log (the shape of the
// transaction-control literature's commit/recovery log), and a single
// force makes every record waiting in the current batch durable at
// once: one fsync for the file backing, one simulated force for the
// in-memory Stable. Callers block only until the batch containing their
// record is forced, so durability cost is amortised across all
// transactions in flight on the node instead of being paid per record.
package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mca/internal/clock"
	"mca/internal/flightrec"
	"mca/internal/ids"
	"mca/internal/metrics"
	"mca/internal/phase"
)

// WAL telemetry, exported under mca_store_*.
var (
	walFlushes = metrics.Default().Counter("mca_store_wal_flushes_total",
		"WAL group-commit flushes (one force each).")
	walFlushRecords = metrics.Default().Counter("mca_store_wal_records_total",
		"Records made durable by WAL flushes.")
	walFlushNs = metrics.Default().Histogram("mca_store_wal_flush_ns",
		"WAL flush duration (force + install), ns.")
	walBatchRecords = metrics.Default().Histogram("mca_store_wal_batch_records",
		"Records per WAL flush (group-commit batch size).")
)

// walOp discriminates log entry kinds.
type walOp string

const (
	walOpRecord walOp = "record" // durably store (or overwrite) an intention
	walOpForget walOp = "forget" // remove a fully acknowledged intention
)

// walEntry is one log record, encoded as a JSON line in the file
// backing.
type walEntry struct {
	Op     walOp        `json:"op"`
	Action ids.ActionID `json:"action"`
	In     *Intention   `json:"in,omitempty"`
}

// walBatch is one group-commit unit: every entry appended while the
// batch was open becomes durable with a single force. Waiters block on
// done; err is the batch's collective outcome.
type walBatch struct {
	entries []walEntry
	// gen is the owner's crash generation at the batch's creation: a
	// crash between append and force invalidates the batch, so records
	// never install "durably" on a store that was down when they were
	// forced.
	gen uint64

	done chan struct{}
	err  error
}

// FlushInfo describes one completed WAL flush, for observers (the node
// layer turns these into trace spans).
type FlushInfo struct {
	Records  int
	Duration time.Duration
	Err      error
}

// WAL is a per-node write-ahead log shared by every transaction on the
// node. It shares fate with its owning Stable store: appends fail while
// the store is crashed, and forced records survive crashes.
type WAL struct {
	owner *Stable

	// gen counts owner crashes; in-flight batches from an older
	// generation fail instead of installing.
	gen atomic.Uint64
	// perRecord disables group commit: every record is forced alone,
	// forces serialised — the pre-WAL retail path, kept as the
	// measurable baseline for E23.
	perRecord atomic.Bool
	// window holds a flush open (ns) so more transactions join the
	// batch. Zero means natural batching only: records arriving while a
	// force is in progress form the next batch.
	window atomic.Int64
	// forceDelay simulates the latency of one stable-log force for the
	// in-memory backing (the file backing pays its real fsync instead).
	forceDelay atomic.Int64
	// crashNextForce arms a crash injection inside the next force — the
	// "kill mid group-commit window" point of the chaos matrix.
	crashNextForce atomic.Bool
	// nodeID tags flight-recorder events with the hosting node, when the
	// node layer announces it (store itself is node-agnostic).
	nodeID atomic.Uint64
	// clk times flushes and paces the group-commit window. Stored
	// atomically (boxed, since atomic.Value rejects differing concrete
	// types) because flushLoop goroutines may already be running when
	// the node layer installs its clock.
	clk atomic.Value // clockBox

	// flushes/records count completed work for tests and experiments.
	flushes atomic.Uint64
	records atomic.Uint64

	obsMu sync.Mutex
	obs   func(FlushInfo)

	mu       sync.Mutex
	index    map[ids.ActionID]Intention
	cur      *walBatch
	flushing bool

	// flushMu serialises forces (one log head), including per-record
	// baseline forces.
	flushMu sync.Mutex
	file    *walFile // nil for the in-memory backing
}

func newWAL(owner *Stable, file *walFile, index map[ids.ActionID]Intention) *WAL {
	if index == nil {
		index = make(map[ids.ActionID]Intention)
	}
	w := &WAL{owner: owner, file: file, index: index}
	w.clk.Store(clockBox{clock.Real()})
	return w
}

// clockBox wraps the clock interface so atomic.Value accepts stores of
// differing concrete clock types.
type clockBox struct{ c clock.Clock }

// SetClock substitutes the WAL's time source (group-commit window,
// flush timing, simulated force delay). The node layer installs its
// clock here so a virtual node's WAL shares the virtual timeline.
func (w *WAL) SetClock(c clock.Clock) { w.clk.Store(clockBox{c}) }

func (w *WAL) clock() clock.Clock { return w.clk.Load().(clockBox).c }

// SetGroupCommit toggles batched forces (default on). Off forces every
// record alone, serialised: the pre-WAL baseline.
func (w *WAL) SetGroupCommit(on bool) { w.perRecord.Store(!on) }

// SetWindow holds each flush open for d so more records join the batch.
// Zero (the default) batches naturally: whatever arrives during the
// previous force forms the next batch.
func (w *WAL) SetWindow(d time.Duration) { w.window.Store(int64(d)) }

// SetForceDelay simulates per-force stable-log latency for the
// in-memory backing. The file backing ignores it (its fsync is real).
func (w *WAL) SetForceDelay(d time.Duration) { w.forceDelay.Store(int64(d)) }

// SetNodeID tags the WAL's flight-recorder events with the hosting
// node's identifier.
func (w *WAL) SetNodeID(id uint64) { w.nodeID.Store(id) }

// SetFlushObserver installs a callback receiving every completed flush.
func (w *WAL) SetFlushObserver(fn func(FlushInfo)) {
	w.obsMu.Lock()
	defer w.obsMu.Unlock()
	w.obs = fn
}

// Stats returns the number of completed flushes and the number of
// records they made durable. records/flushes is the achieved group
// size.
func (w *WAL) Stats() (flushes, records uint64) {
	return w.flushes.Load(), w.records.Load()
}

// Record durably stores (or overwrites) the intention for the action,
// returning once the batch containing it is forced.
func (w *WAL) Record(in Intention) error {
	in.Writes = *cloneBatch(in.Writes)
	return w.append(walEntry{Op: walOpRecord, Action: in.Action, In: &in})
}

// Forget durably removes the record once the outcome is fully applied
// and acknowledged.
func (w *WAL) Forget(a ids.ActionID) error {
	return w.append(walEntry{Op: walOpForget, Action: a})
}

// Lookup returns the intention recorded for the action.
func (w *WAL) Lookup(a ids.ActionID) (Intention, bool, error) {
	if w.owner.Crashed() {
		return Intention{}, false, ErrCrashed
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	in, ok := w.index[a]
	return in, ok, nil
}

// Pending returns all records still in the log, sorted by action, for
// recovery scans.
func (w *WAL) Pending() ([]Intention, error) {
	if w.owner.Crashed() {
		return nil, ErrCrashed
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Intention, 0, len(w.index))
	for _, in := range w.index {
		out = append(out, in)
	}
	sortIntentions(out)
	return out, nil
}

// append adds the entry to the open batch and waits for that batch's
// force. In per-record mode the entry is its own batch.
func (w *WAL) append(e walEntry) error {
	if w.owner.Crashed() {
		return ErrCrashed
	}
	// The whole wait — group-commit window plus the force itself — is
	// force-wait from the transaction's point of view; charge it to the
	// record's action (the distributed transaction identifier) when
	// that transaction is traced.
	clk := w.clock()
	start := clk.Now()
	if w.perRecord.Load() {
		b := &walBatch{entries: []walEntry{e}, gen: w.gen.Load(), done: make(chan struct{})}
		w.flushMu.Lock()
		w.flush(b)
		w.flushMu.Unlock()
		phase.RecordAction(e.Action, phase.Force, clk.Since(start))
		return b.err
	}
	w.mu.Lock()
	if w.cur == nil {
		w.cur = &walBatch{gen: w.gen.Load(), done: make(chan struct{})}
	}
	b := w.cur
	b.entries = append(b.entries, e)
	if !w.flushing {
		w.flushing = true
		//mcalint:ignore goleak flushLoop exits when no batch remains; every appender joins its batch via <-b.done
		go w.flushLoop()
	}
	w.mu.Unlock()
	<-b.done
	phase.RecordAction(e.Action, phase.Force, clk.Since(start))
	return b.err
}

// flushLoop drains open batches until none remain. While one batch is
// being forced, new appends pile into the next, so concurrent
// transactions share forces without any coordination of their own.
func (w *WAL) flushLoop() {
	for {
		if d := time.Duration(w.window.Load()); d > 0 {
			// Hold the window open so more transactions join the batch.
			w.clock().Sleep(d)
		}
		w.mu.Lock()
		b := w.cur
		w.cur = nil
		if b == nil {
			w.flushing = false
			w.mu.Unlock()
			return
		}
		w.mu.Unlock()
		w.flushMu.Lock()
		w.flush(b)
		w.flushMu.Unlock()
	}
}

// flush forces the batch and, on success, installs its entries in the
// index. Called with flushMu held.
func (w *WAL) flush(b *walBatch) {
	clk := w.clock()
	start := clk.Now()
	err := w.force(b)
	if err == nil {
		w.mu.Lock()
		for _, e := range b.entries {
			switch e.Op {
			case walOpRecord:
				w.index[e.Action] = *e.In
			case walOpForget:
				delete(w.index, e.Action)
			}
		}
		w.mu.Unlock()
		w.maybeCompact()
	}
	d := clk.Since(start)
	w.flushes.Add(1)
	w.records.Add(uint64(len(b.entries)))
	walFlushes.Inc()
	walFlushRecords.Add(uint64(len(b.entries)))
	walFlushNs.ObserveDuration(d)
	walBatchRecords.Observe(uint64(len(b.entries)))
	flightrec.Record(flightrec.Event{
		Kind: flightrec.KindWALFlush,
		Node: w.nodeID.Load(),
		A:    uint64(len(b.entries)),
		B:    uint64(d),
	})
	w.obsMu.Lock()
	obs := w.obs
	w.obsMu.Unlock()
	if obs != nil {
		obs(FlushInfo{Records: len(b.entries), Duration: d, Err: err})
	}
	b.err = err
	close(b.done)
}

// force makes the batch durable: one fsync'd file append for the file
// backing, one (optionally delayed) install for the in-memory backing.
// A crash during the force fails every record in the batch.
func (w *WAL) force(b *walBatch) error {
	if w.crashNextForce.CompareAndSwap(true, false) {
		// Injected kill mid-window: the node dies with the batch
		// unforced (file entries may hit disk, but no waiter learns of
		// success — presumed abort resolves them after recovery).
		w.owner.Crash()
		return ErrCrashed
	}
	if w.owner.Crashed() || b.gen != w.gen.Load() {
		return ErrCrashed
	}
	if w.file != nil {
		if err := w.file.appendEntries(b.entries); err != nil {
			return err
		}
	} else if d := time.Duration(w.forceDelay.Load()); d > 0 {
		w.clock().Sleep(d)
	}
	if w.owner.Crashed() || b.gen != w.gen.Load() {
		return ErrCrashed
	}
	return nil
}

// maybeCompact rewrites the file backing down to its live records when
// the log has grown past its compaction threshold. Called with flushMu
// held (no force can run concurrently).
func (w *WAL) maybeCompact() {
	if w.file == nil || w.file.size <= w.file.compactAt {
		return
	}
	w.mu.Lock()
	live := make([]walEntry, 0, len(w.index))
	for a := range w.index {
		in := w.index[a]
		live = append(live, walEntry{Op: walOpRecord, Action: a, In: &in})
	}
	w.mu.Unlock()
	// Best effort: a failed compaction leaves the old (valid) log.
	//mcalint:ignore errdrop a failed compaction keeps the old log, which remains correct, only longer
	_ = w.file.compact(live)
}

// reloadFromFile rebuilds the index from the on-disk log after a crash,
// so recovery reads what is actually durable rather than what the
// pre-crash memory believed.
func (w *WAL) reloadFromFile() {
	if w.file == nil {
		return
	}
	//mcalint:ignore errdrop an unreadable post-crash log yields an empty index, the presumed-abort default
	index, _ := readWALFile(w.file.path)
	w.mu.Lock()
	w.index = index
	w.mu.Unlock()
}

func sortIntentions(out []Intention) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Action < out[j-1].Action; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
}

// --- file backing ---

const (
	walFilename = "wal.log"
	// walCompactMin is the smallest log size worth compacting.
	walCompactMin = 256 << 10
)

// walFile is the WAL's on-disk form: one JSON line per entry, appended
// and fsync'd per flush, compacted by rewrite-and-rename when it grows.
type walFile struct {
	dir  string
	path string
	f    *os.File
	size int64
	// compactAt is the size threshold that triggers a compaction.
	compactAt int64
}

// openWALFile opens (creating if needed) the log in dir and returns the
// live records it holds. A torn trailing line — a crash mid-append —
// marks the durable end of the log and is discarded.
func openWALFile(dir string) (*walFile, map[ids.ActionID]Intention, error) {
	path := filepath.Join(dir, walFilename)
	index, err := readWALFile(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("open wal: %w", err)
	}
	wf := &walFile{dir: dir, path: path, f: f, size: st.Size(), compactAt: walCompactMin}
	return wf, index, nil
}

// readWALFile replays the log into its live-record index. Undecodable
// trailing bytes (torn final append) are ignored.
func readWALFile(path string) (map[ids.ActionID]Intention, error) {
	index := make(map[ids.ActionID]Intention)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return index, nil
	}
	if err != nil {
		return nil, fmt.Errorf("read wal: %w", err)
	}
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e walEntry
		if err := json.Unmarshal(line, &e); err != nil {
			// Torn tail: the durable log ends here.
			break
		}
		switch e.Op {
		case walOpRecord:
			if e.In != nil {
				index[e.Action] = *e.In
			}
		case walOpForget:
			delete(index, e.Action)
		}
	}
	return index, nil
}

// appendEntries forces the entries with a single write+fsync.
func (wf *walFile) appendEntries(entries []walEntry) error {
	var buf bytes.Buffer
	for i := range entries {
		line, err := json.Marshal(entries[i])
		if err != nil {
			return fmt.Errorf("encode wal entry: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	n, err := wf.f.Write(buf.Bytes())
	wf.size += int64(n)
	if err != nil {
		return fmt.Errorf("append wal: %w", err)
	}
	if err := wf.f.Sync(); err != nil {
		return fmt.Errorf("force wal: %w", err)
	}
	return nil
}

// compact atomically replaces the log with just the live records.
func (wf *walFile) compact(live []walEntry) error {
	tmp, err := os.CreateTemp(wf.dir, "waltmp-*")
	if err != nil {
		return fmt.Errorf("compact wal: %w", err)
	}
	name := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("compact wal: %w", err)
	}
	var size int64
	for i := range live {
		line, err := json.Marshal(live[i])
		if err != nil {
			return fail(err)
		}
		n, err := tmp.Write(append(line, '\n'))
		size += int64(n)
		if err != nil {
			return fail(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("compact wal: %w", err)
	}
	if err := os.Rename(name, wf.path); err != nil {
		os.Remove(name)
		return fmt.Errorf("compact wal: %w", err)
	}
	if err := syncDir(wf.dir); err != nil {
		return err
	}
	old := wf.f
	f, err := os.OpenFile(wf.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("reopen wal: %w", err)
	}
	old.Close()
	wf.f = f
	wf.size = size
	if min := int64(walCompactMin); size*4 > min {
		wf.compactAt = size * 4
	} else {
		wf.compactAt = min
	}
	return nil
}
