package store

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"mca/internal/ids"
)

func TestVolatileBasics(t *testing.T) {
	v := NewVolatile()
	id := ids.NewObjectID()

	if _, err := v.Read(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Read empty = %v, want ErrNotFound", err)
	}
	if err := v.Write(id, State("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := v.Read(id)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Read = %q", got)
	}
	if err := v.Delete(id); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := v.Read(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Read after delete = %v, want ErrNotFound", err)
	}
	if err := v.Delete(id); err != nil {
		t.Fatalf("Delete absent: %v", err)
	}
}

func TestVolatileCrashLosesEverything(t *testing.T) {
	v := NewVolatile()
	id := ids.NewObjectID()
	if err := v.Write(id, State("x")); err != nil {
		t.Fatal(err)
	}
	v.Crash()
	if _, err := v.Read(id); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Read while crashed = %v, want ErrCrashed", err)
	}
	if err := v.Write(id, State("y")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Write while crashed = %v, want ErrCrashed", err)
	}
	v.Restart()
	if _, err := v.Read(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Read after restart = %v, want ErrNotFound (volatile data lost)", err)
	}
}

func TestStableCrashPreservesData(t *testing.T) {
	s := NewStable()
	id := ids.NewObjectID()
	if err := s.Write(id, State("durable")); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	if _, err := s.Read(id); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Read while crashed = %v, want ErrCrashed", err)
	}
	s.Recover()
	got, err := s.Read(id)
	if err != nil {
		t.Fatalf("Read after recover: %v", err)
	}
	if string(got) != "durable" {
		t.Fatalf("Read = %q, want %q", got, "durable")
	}
}

func TestStatesAreCopiedAtBoundaries(t *testing.T) {
	s := NewStable()
	id := ids.NewObjectID()
	buf := State("aaaa")
	if err := s.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'z' // caller reuses its buffer
	got, err := s.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "aaaa" {
		t.Fatalf("store aliased the caller's buffer: %q", got)
	}
	got[0] = 'q' // caller mutates the returned state
	again, err := s.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != "aaaa" {
		t.Fatalf("store exposed internal state: %q", again)
	}
}

func TestApplyBatchAtomicHappyPath(t *testing.T) {
	s := NewStable()
	a, b, c := ids.NewObjectID(), ids.NewObjectID(), ids.NewObjectID()
	if err := s.Write(c, State("old")); err != nil {
		t.Fatal(err)
	}
	err := s.ApplyBatch(Batch{
		Writes:  map[ids.ObjectID]State{a: State("1"), b: State("2")},
		Deletes: []ids.ObjectID{c},
	})
	if err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	for id, want := range map[ids.ObjectID]string{a: "1", b: "2"} {
		got, err := s.Read(id)
		if err != nil || string(got) != want {
			t.Fatalf("Read(%v) = %q, %v; want %q", id, got, err, want)
		}
	}
	if _, err := s.Read(c); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted object still present: %v", err)
	}
}

func TestApplyBatchEmptyIsNoop(t *testing.T) {
	s := NewStable()
	if err := s.ApplyBatch(Batch{}); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestCrashBeforeJournalLosesBatch(t *testing.T) {
	s := NewStable()
	a := ids.NewObjectID()
	s.CrashDuringNextBatch(CrashBeforeJournal)
	err := s.ApplyBatch(Batch{Writes: map[ids.ObjectID]State{a: State("x")}})
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("ApplyBatch = %v, want ErrCrashed", err)
	}
	if repaired := s.Recover(); repaired {
		t.Fatal("nothing should be repaired: the journal was never forced")
	}
	if _, err := s.Read(a); !errors.Is(err, ErrNotFound) {
		t.Fatalf("object must not exist after lost batch: %v", err)
	}
}

func TestCrashAfterJournalIsRepaired(t *testing.T) {
	s := NewStable()
	a, b := ids.NewObjectID(), ids.NewObjectID()
	s.CrashDuringNextBatch(CrashAfterJournal)
	err := s.ApplyBatch(Batch{Writes: map[ids.ObjectID]State{a: State("1"), b: State("2")}})
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("ApplyBatch = %v, want ErrCrashed", err)
	}
	if repaired := s.Recover(); !repaired {
		t.Fatal("Recover must repair the journalled batch")
	}
	for id, want := range map[ids.ObjectID]string{a: "1", b: "2"} {
		got, err := s.Read(id)
		if err != nil || string(got) != want {
			t.Fatalf("Read(%v) = %q, %v; want %q", id, got, err, want)
		}
	}
}

func TestCrashMidApplyIsRepaired(t *testing.T) {
	s := NewStable()
	writes := make(map[ids.ObjectID]State)
	for i := 0; i < 10; i++ {
		writes[ids.NewObjectID()] = State{byte(i)}
	}
	s.CrashDuringNextBatch(CrashMidApply)
	if err := s.ApplyBatch(Batch{Writes: writes}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("ApplyBatch = %v, want ErrCrashed", err)
	}
	if !s.Recover() {
		t.Fatal("Recover must repair the half-applied batch")
	}
	for id, want := range writes {
		got, err := s.Read(id)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("Read(%v) = %q, %v; want %q", id, got, err, want)
		}
	}
}

func TestListIsSorted(t *testing.T) {
	s := NewStable()
	idA, idB, idC := ids.NewObjectID(), ids.NewObjectID(), ids.NewObjectID()
	for _, id := range []ids.ObjectID{idC, idA, idB} {
		if err := s.Write(id, State("x")); err != nil {
			t.Fatal(err)
		}
	}
	list, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("List len = %d", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1] >= list[i] {
			t.Fatalf("List not ascending: %v", list)
		}
	}
}

func TestIntentionLogBasics(t *testing.T) {
	s := NewStable()
	log := s.Intentions()
	action := ids.NewActionID()
	obj := ids.NewObjectID()

	in := Intention{
		Action: action,
		Status: IntentionPrepared,
		Writes: Batch{Writes: map[ids.ObjectID]State{obj: State("w")}},
	}
	if err := log.Record(in); err != nil {
		t.Fatal(err)
	}
	got, ok, err := log.Lookup(action)
	if err != nil || !ok {
		t.Fatalf("Lookup = %v, %v", ok, err)
	}
	if got.Status != IntentionPrepared {
		t.Fatalf("Status = %v", got.Status)
	}
	if string(got.Writes.Writes[obj]) != "w" {
		t.Fatalf("Writes = %q", got.Writes.Writes[obj])
	}

	// Overwrite with the decision.
	in.Status = IntentionCommitted
	if err := log.Record(in); err != nil {
		t.Fatal(err)
	}
	got, _, _ = log.Lookup(action)
	if got.Status != IntentionCommitted {
		t.Fatalf("Status after overwrite = %v", got.Status)
	}

	if err := log.Forget(action); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := log.Lookup(action); ok {
		t.Fatal("record must be gone after Forget")
	}
}

func TestIntentionLogSurvivesCrash(t *testing.T) {
	s := NewStable()
	log := s.Intentions()
	action := ids.NewActionID()
	if err := log.Record(Intention{Action: action, Status: IntentionPrepared}); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	if err := log.Record(Intention{Action: action, Status: IntentionCommitted}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Record while crashed = %v, want ErrCrashed", err)
	}
	if _, _, err := log.Lookup(action); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Lookup while crashed = %v, want ErrCrashed", err)
	}
	s.Recover()
	pending, err := log.Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].Action != action || pending[0].Status != IntentionPrepared {
		t.Fatalf("Pending after recovery = %+v", pending)
	}
}

func TestIntentionStatusString(t *testing.T) {
	tests := []struct {
		st   IntentionStatus
		want string
	}{
		{IntentionPrepared, "prepared"},
		{IntentionCommitted, "committed"},
		{IntentionAborted, "aborted"},
		{IntentionStatus(9), "status(9)"},
	}
	for _, tt := range tests {
		if got := tt.st.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestStableReadBackProperty(t *testing.T) {
	// Property: for any sequence of writes, the last write per object
	// is what Read returns, before and after a crash/recover cycle.
	s := NewStable()
	f := func(keys []uint8, vals [][]byte) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		want := make(map[ids.ObjectID][]byte)
		for i := 0; i < n; i++ {
			id := ids.ObjectID(uint64(keys[i]) + 1)
			if err := s.Write(id, vals[i]); err != nil {
				return false
			}
			want[id] = vals[i]
		}
		s.Crash()
		s.Recover()
		for id, w := range want {
			got, err := s.Read(id)
			if err != nil {
				return false
			}
			if !bytes.Equal(got, w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchEmpty(t *testing.T) {
	if !(Batch{}).Empty() {
		t.Fatal("zero batch must be empty")
	}
	if (Batch{Deletes: []ids.ObjectID{1}}).Empty() {
		t.Fatal("batch with deletes must not be empty")
	}
	if (Batch{Writes: map[ids.ObjectID]State{1: nil}}).Empty() {
		t.Fatal("batch with writes must not be empty")
	}
}

func TestPendingSortedByAction(t *testing.T) {
	s := NewStable()
	log := s.Intentions()
	var want []ids.ActionID
	for i := 0; i < 5; i++ {
		a := ids.NewActionID()
		want = append(want, a)
		if err := log.Record(Intention{Action: a, Status: IntentionPrepared}); err != nil {
			t.Fatal(err)
		}
	}
	pending, err := log.Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != len(want) {
		t.Fatalf("Pending len = %d, want %d", len(pending), len(want))
	}
	for i, in := range pending {
		if in.Action != want[i] {
			t.Fatalf("Pending[%d] = %v, want %v (%v)", i, in.Action, want[i], fmt.Sprint(pending))
		}
	}
}

func TestVolatileList(t *testing.T) {
	v := NewVolatile()
	idA, idB := ids.NewObjectID(), ids.NewObjectID()
	for _, id := range []ids.ObjectID{idB, idA} {
		if err := v.Write(id, State("x")); err != nil {
			t.Fatal(err)
		}
	}
	list, err := v.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0] >= list[1] {
		t.Fatalf("List = %v", list)
	}
	v.Crash()
	if _, err := v.List(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("List while crashed = %v", err)
	}
}

func TestStableDelete(t *testing.T) {
	s := NewStable()
	id := ids.NewObjectID()
	if err := s.Write(id, State("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Read after delete = %v", err)
	}
	if err := s.Delete(id); err != nil {
		t.Fatalf("double delete = %v", err)
	}
	s.Crash()
	if err := s.Delete(id); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Delete while crashed = %v", err)
	}
	s.Recover()
}

func TestApplyBatchWithDeletes(t *testing.T) {
	s := NewStable()
	keep, drop := ids.NewObjectID(), ids.NewObjectID()
	if err := s.Write(keep, State("k")); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(drop, State("d")); err != nil {
		t.Fatal(err)
	}
	// Journal + crash: the delete must also replay.
	s.CrashDuringNextBatch(CrashAfterJournal)
	err := s.ApplyBatch(Batch{
		Writes:  map[ids.ObjectID]State{keep: State("k2")},
		Deletes: []ids.ObjectID{drop},
	})
	if !errors.Is(err, ErrCrashed) {
		t.Fatal(err)
	}
	if !s.Recover() {
		t.Fatal("journal replay expected")
	}
	if got, _ := s.Read(keep); string(got) != "k2" {
		t.Fatalf("keep = %q", got)
	}
	if _, err := s.Read(drop); !errors.Is(err, ErrNotFound) {
		t.Fatalf("drop survived the replayed delete: %v", err)
	}
}
