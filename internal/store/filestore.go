package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"mca/internal/ids"
)

// syncDir forces the directory entry changes of a preceding rename or
// remove to disk. Without it a "forced" journal or object install is
// only durable as file *content*: the directory entry pointing at it
// can still vanish on power loss, undoing the rename.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("sync dir: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("sync dir: %w", err)
	}
	dirSyncs.Add(1)
	return nil
}

// dirSyncs counts successful directory fsyncs, so tests can assert the
// durability path actually pins its renames.
var dirSyncs atomic.Uint64

// errCrashPoint reports that applyBatchAt stopped at an injected crash
// point; the stable-store wrapper converts it into a crash.
var errCrashPoint = errors.New("store: injected crash point")

// FileStore is a stable object store backed by a directory on disk. Each
// object state lives in its own file, written atomically via a temporary
// file and rename. Batches are made atomic with a journal file: the batch
// is serialized and forced to the journal first, then applied, then the
// journal is removed; Open replays a surviving journal, so a crash at any
// point yields either none or all of the batch.
//
// FileStore backs the "diskfull workstation" configuration of paper §2
// with real durability; the in-memory Stable store is the fast simulated
// equivalent used by most tests and benchmarks.
type FileStore struct {
	dir string

	mu sync.Mutex
}

const (
	objectPrefix    = "obj-"
	objectSuffix    = ".state"
	journalFilename = "journal.pending"
)

// OpenFileStore opens (creating if needed) a file store rooted at dir and
// replays any pending journal. It returns the store and whether a batch
// was repaired.
func OpenFileStore(dir string) (*FileStore, bool, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, false, fmt.Errorf("open file store: %w", err)
	}
	fs := &FileStore{dir: dir}
	repaired, err := fs.replayJournal()
	if err != nil {
		return nil, false, err
	}
	return fs, repaired, nil
}

var _ Store = (*FileStore)(nil)

func (f *FileStore) objectPath(id ids.ObjectID) string {
	return filepath.Join(f.dir, objectPrefix+strconv.FormatUint(uint64(id), 10)+objectSuffix)
}

// Read implements Store.
func (f *FileStore) Read(id ids.ObjectID) (State, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	data, err := os.ReadFile(f.objectPath(id))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("read object %v: %w", id, err)
	}
	return data, nil
}

// Write implements Store: an atomic single-object write.
func (f *FileStore) Write(id ids.ObjectID, s State) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writeLocked(id, s)
}

func (f *FileStore) writeLocked(id ids.ObjectID, s State) error {
	tmp, err := os.CreateTemp(f.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("write object %v: %w", id, err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(s); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("write object %v: %w", id, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("sync object %v: %w", id, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("close object %v: %w", id, err)
	}
	if err := os.Rename(name, f.objectPath(id)); err != nil {
		os.Remove(name)
		return fmt.Errorf("install object %v: %w", id, err)
	}
	return syncDir(f.dir)
}

// Delete implements Store.
func (f *FileStore) Delete(id ids.ObjectID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.deleteLocked(id)
}

func (f *FileStore) deleteLocked(id ids.ObjectID) error {
	err := os.Remove(f.objectPath(id))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("delete object %v: %w", id, err)
	}
	return syncDir(f.dir)
}

// List implements Store.
func (f *FileStore) List() ([]ids.ObjectID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("list objects: %w", err)
	}
	var out []ids.ObjectID
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, objectPrefix) || !strings.HasSuffix(name, objectSuffix) {
			continue
		}
		numeric := strings.TrimSuffix(strings.TrimPrefix(name, objectPrefix), objectSuffix)
		n, err := strconv.ParseUint(numeric, 10, 64)
		if err != nil {
			continue
		}
		out = append(out, ids.ObjectID(n))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// journalRecord is the on-disk form of a pending batch.
type journalRecord struct {
	Writes  map[string][]byte `json:"writes"`
	Deletes []uint64          `json:"deletes"`
}

// ApplyBatch installs the batch atomically with respect to crashes: the
// journal is forced before any object file changes, and Open replays it.
func (f *FileStore) ApplyBatch(b Batch) error {
	return f.applyBatchAt(b, 0)
}

// applyBatchAt is ApplyBatch with an injected crash point for recovery
// tests: with stop set it leaves the on-disk state exactly as a crash
// at that moment would (journal forced but unapplied, or half the
// writes installed) and returns errCrashPoint.
func (f *FileStore) applyBatchAt(b Batch, stop CrashPoint) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if b.Empty() {
		return nil
	}

	rec := journalRecord{Writes: make(map[string][]byte, len(b.Writes))}
	for id, s := range b.Writes {
		rec.Writes[strconv.FormatUint(uint64(id), 10)] = s
	}
	for _, id := range b.Deletes {
		rec.Deletes = append(rec.Deletes, uint64(id))
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("encode journal: %w", err)
	}
	if err := f.forceJournal(data); err != nil {
		return err
	}
	if stop == CrashAfterJournal {
		return errCrashPoint
	}
	if stop == CrashMidApply {
		half := len(b.Writes) / 2
		n := 0
		for _, id := range sortedKeys(b.Writes) {
			if n >= half {
				break
			}
			if err := f.writeLocked(id, b.Writes[id]); err != nil {
				return err
			}
			n++
		}
		return errCrashPoint
	}
	if err := f.applyJournalRecord(rec); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(f.dir, journalFilename)); err != nil {
		return fmt.Errorf("clear journal: %w", err)
	}
	return syncDir(f.dir)
}

func (f *FileStore) forceJournal(data []byte) error {
	tmp, err := os.CreateTemp(f.dir, "jtmp-*")
	if err != nil {
		return fmt.Errorf("force journal: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("force journal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("force journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("force journal: %w", err)
	}
	if err := os.Rename(name, filepath.Join(f.dir, journalFilename)); err != nil {
		os.Remove(name)
		return fmt.Errorf("install journal: %w", err)
	}
	return syncDir(f.dir)
}

func (f *FileStore) applyJournalRecord(rec journalRecord) error {
	for key, s := range rec.Writes {
		n, err := strconv.ParseUint(key, 10, 64)
		if err != nil {
			return fmt.Errorf("corrupt journal key %q: %w", key, err)
		}
		if err := f.writeLocked(ids.ObjectID(n), s); err != nil {
			return err
		}
	}
	for _, id := range rec.Deletes {
		if err := f.deleteLocked(ids.ObjectID(id)); err != nil {
			return err
		}
	}
	return nil
}

// replayJournal completes a batch interrupted by a crash. It returns
// whether a journal was found and applied.
func (f *FileStore) replayJournal() (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	path := filepath.Join(f.dir, journalFilename)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("read journal: %w", err)
	}
	var rec journalRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		// A torn journal write means the batch never became
		// durable: discard it (the rename-based force makes this
		// unreachable in our model, but be safe with external
		// tampering).
		if rmErr := os.Remove(path); rmErr != nil {
			return false, fmt.Errorf("discard torn journal: %w", rmErr)
		}
		return false, syncDir(f.dir)
	}
	if err := f.applyJournalRecord(rec); err != nil {
		return false, err
	}
	if err := os.Remove(path); err != nil {
		return false, fmt.Errorf("clear journal: %w", err)
	}
	return true, syncDir(f.dir)
}
