package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mca/internal/ids"
)

func openTestStore(t *testing.T, dir string) *FileStore {
	t.Helper()
	fs, _, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("OpenFileStore: %v", err)
	}
	return fs
}

func TestFileStoreBasics(t *testing.T) {
	fs := openTestStore(t, t.TempDir())
	id := ids.NewObjectID()

	if _, err := fs.Read(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Read empty = %v, want ErrNotFound", err)
	}
	if err := fs.Write(id, State("on disk")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read(id)
	if err != nil || string(got) != "on disk" {
		t.Fatalf("Read = %q, %v", got, err)
	}
	if err := fs.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Read after delete = %v, want ErrNotFound", err)
	}
}

func TestFileStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	id := ids.NewObjectID()
	fs := openTestStore(t, dir)
	if err := fs.Write(id, State("persisted")); err != nil {
		t.Fatal(err)
	}

	// "Crash" = drop the handle, reopen the directory.
	fs2 := openTestStore(t, dir)
	got, err := fs2.Read(id)
	if err != nil || string(got) != "persisted" {
		t.Fatalf("Read after reopen = %q, %v", got, err)
	}
	list, err := fs2.List()
	if err != nil || len(list) != 1 || list[0] != id {
		t.Fatalf("List after reopen = %v, %v", list, err)
	}
}

func TestFileStoreBatchAtomic(t *testing.T) {
	dir := t.TempDir()
	fs := openTestStore(t, dir)
	a, b, c := ids.NewObjectID(), ids.NewObjectID(), ids.NewObjectID()
	if err := fs.Write(c, State("victim")); err != nil {
		t.Fatal(err)
	}
	err := fs.ApplyBatch(Batch{
		Writes:  map[ids.ObjectID]State{a: State("A"), b: State("B")},
		Deletes: []ids.ObjectID{c},
	})
	if err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	if _, err := fs.Read(c); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete in batch not applied: %v", err)
	}
	for id, want := range map[ids.ObjectID]string{a: "A", b: "B"} {
		got, err := fs.Read(id)
		if err != nil || string(got) != want {
			t.Fatalf("Read(%v) = %q, %v", id, got, err)
		}
	}
	// The journal must be gone after a clean batch.
	if _, err := os.Stat(filepath.Join(dir, journalFilename)); !os.IsNotExist(err) {
		t.Fatalf("journal left behind: %v", err)
	}
}

func TestFileStoreReplaysJournalOnOpen(t *testing.T) {
	// Simulate a crash between journal force and application: write
	// the journal by hand, then open the store.
	dir := t.TempDir()
	fs := openTestStore(t, dir)
	id := ids.NewObjectID()

	// Build the journal exactly as ApplyBatch would, then "crash"
	// before applying by writing the file directly.
	journal := []byte(`{"writes":{"` + id.String()[1:] + `":"` + encodeB64("recovered") + `"},"deletes":[]}`)
	if err := os.WriteFile(filepath.Join(dir, journalFilename), journal, 0o644); err != nil {
		t.Fatal(err)
	}
	_ = fs // old handle abandoned

	fs2, repaired, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("OpenFileStore: %v", err)
	}
	if !repaired {
		t.Fatal("open must report the journal replay")
	}
	got, err := fs2.Read(id)
	if err != nil || string(got) != "recovered" {
		t.Fatalf("Read after replay = %q, %v", got, err)
	}
}

func TestFileStoreDiscardsTornJournal(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, journalFilename), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, repaired, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("OpenFileStore over torn journal: %v", err)
	}
	if repaired {
		t.Fatal("a torn journal must be discarded, not replayed")
	}
	list, err := fs.List()
	if err != nil || len(list) != 0 {
		t.Fatalf("List = %v, %v", list, err)
	}
	if _, err := os.Stat(filepath.Join(dir, journalFilename)); !os.IsNotExist(err) {
		t.Fatal("torn journal must be removed")
	}
}

func TestFileStoreBinaryStates(t *testing.T) {
	fs := openTestStore(t, t.TempDir())
	id := ids.NewObjectID()
	blob := make(State, 256)
	for i := range blob {
		blob[i] = byte(i)
	}
	if err := fs.Write(id, blob); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read(id)
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("binary round trip failed: %v", err)
	}
}

func TestFileStoreListIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	fs := openTestStore(t, dir)
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "obj-xyz.state"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	id := ids.NewObjectID()
	if err := fs.Write(id, State("real")); err != nil {
		t.Fatal(err)
	}
	list, err := fs.List()
	if err != nil || len(list) != 1 || list[0] != id {
		t.Fatalf("List = %v, %v; want just %v", list, err, id)
	}
}

// encodeB64 mirrors encoding/json's []byte encoding so the hand-built
// journal in TestFileStoreReplaysJournalOnOpen matches the real format.
func encodeB64(s string) string {
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
	data := []byte(s)
	var out []byte
	for len(data) >= 3 {
		out = append(out,
			alphabet[data[0]>>2],
			alphabet[(data[0]&0x3)<<4|data[1]>>4],
			alphabet[(data[1]&0xF)<<2|data[2]>>6],
			alphabet[data[2]&0x3F])
		data = data[3:]
	}
	switch len(data) {
	case 2:
		out = append(out,
			alphabet[data[0]>>2],
			alphabet[(data[0]&0x3)<<4|data[1]>>4],
			alphabet[(data[1]&0xF)<<2],
			'=')
	case 1:
		out = append(out,
			alphabet[data[0]>>2],
			alphabet[(data[0]&0x3)<<4],
			'=', '=')
	}
	return string(out)
}
