// Package store implements the object stores of paper §2: stable storage
// that survives node crashes with high probability, and volatile storage
// that loses its contents when the node crashes.
//
// Stores hold opaque serialized object states keyed by object identifier.
// Stable stores additionally support atomic batches — the all-or-nothing
// installation of a top-level (or outermost-coloured) action's write set,
// implemented with a journal so that a crash between journal force and
// batch application is repaired on recovery — and an intention log used
// by the distributed commit protocol.
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"mca/internal/ids"
)

// State is an opaque serialized object state. Stores copy states on the
// way in and out, so callers may reuse buffers.
type State []byte

// ErrNotFound is returned when no state is recorded for an object.
var ErrNotFound = errors.New("store: object not found")

// ErrCrashed is returned by operations attempted on a store whose node is
// crashed (fail-silence: a crashed node performs no work).
var ErrCrashed = errors.New("store: node is crashed")

// Store is the common read/write surface of object stores.
type Store interface {
	// Read returns the state recorded for the object, or ErrNotFound.
	Read(id ids.ObjectID) (State, error)
	// Write records the state for the object.
	Write(id ids.ObjectID, s State) error
	// Delete removes the object. Deleting an absent object is not an
	// error.
	Delete(id ids.ObjectID) error
	// List returns the identifiers of all recorded objects in
	// ascending order.
	List() ([]ids.ObjectID, error)
}

// Batch is a write set applied atomically to a stable store.
type Batch struct {
	Writes  map[ids.ObjectID]State
	Deletes []ids.ObjectID
}

// Empty reports whether the batch changes nothing.
func (b Batch) Empty() bool { return len(b.Writes) == 0 && len(b.Deletes) == 0 }

func cloneState(s State) State {
	if s == nil {
		return nil
	}
	out := make(State, len(s))
	copy(out, s)
	return out
}

// Volatile is an in-memory store modelling the volatile storage of a
// diskless workstation: Crash discards everything. It is safe for
// concurrent use.
type Volatile struct {
	mu      sync.Mutex
	crashed bool
	data    map[ids.ObjectID]State
}

// NewVolatile returns an empty volatile store.
func NewVolatile() *Volatile {
	return &Volatile{data: make(map[ids.ObjectID]State)}
}

var _ Store = (*Volatile)(nil)

// Read implements Store.
func (v *Volatile) Read(id ids.ObjectID) (State, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.crashed {
		return nil, ErrCrashed
	}
	s, ok := v.data[id]
	if !ok {
		return nil, ErrNotFound
	}
	return cloneState(s), nil
}

// Write implements Store.
func (v *Volatile) Write(id ids.ObjectID, s State) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.crashed {
		return ErrCrashed
	}
	v.data[id] = cloneState(s)
	return nil
}

// Delete implements Store.
func (v *Volatile) Delete(id ids.ObjectID) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.crashed {
		return ErrCrashed
	}
	delete(v.data, id)
	return nil
}

// List implements Store.
func (v *Volatile) List() ([]ids.ObjectID, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.crashed {
		return nil, ErrCrashed
	}
	return sortedKeys(v.data), nil
}

// Crash models a node crash: all volatile data is lost and the store
// rejects operations until Restart.
func (v *Volatile) Crash() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.crashed = true
	v.data = make(map[ids.ObjectID]State)
}

// Restart brings the store back, empty.
func (v *Volatile) Restart() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.crashed = false
}

// CrashPoint selects a moment inside ApplyBatch at which an injected
// crash takes effect, for recovery testing.
type CrashPoint int

// Crash points understood by Stable.CrashDuringNextBatch.
const (
	// CrashBeforeJournal crashes before the journal record is forced:
	// the batch is wholly lost.
	CrashBeforeJournal CrashPoint = iota + 1
	// CrashAfterJournal crashes after the journal record is forced but
	// before the batch is applied: recovery must complete the batch.
	CrashAfterJournal
	// CrashMidApply crashes after applying roughly half of the batch:
	// recovery must make the batch whole.
	CrashMidApply
)

// Stable is an in-memory store modelling stable storage: Crash preserves
// all durably recorded data. ApplyBatch installs a write set atomically
// through a journal; Recover repairs a half-applied batch after a crash.
// It is safe for concurrent use.
//
// A Stable opened with NewStableAt writes through to a FileStore in a
// directory: object installs, the batch journal and the intention log
// are then really on disk, and Recover reloads them from there — the
// "diskfull workstation" configuration with the same crash simulation
// surface the in-memory store offers.
type Stable struct {
	mu      sync.Mutex
	crashed bool
	data    map[ids.ObjectID]State
	// journal holds the batch that is currently being applied. It is
	// "on disk": it survives Crash and is replayed by Recover. Unused
	// when backing is set (the FileStore keeps a real journal file).
	journal *Batch
	// pendingCrash injects a crash at the chosen point of the next
	// ApplyBatch.
	pendingCrash CrashPoint
	// backing, when set, is the on-disk store every durable mutation
	// writes through to; data is then a read cache rebuilt on Recover.
	backing *FileStore

	wal        *WAL
	intentions *IntentionLog
}

// NewStable returns an empty stable store.
func NewStable() *Stable {
	s := &Stable{data: make(map[ids.ObjectID]State)}
	s.wal = newWAL(s, nil, nil)
	s.intentions = &IntentionLog{wal: s.wal}
	return s
}

// NewStableAt returns a stable store backed by a FileStore rooted at
// dir, replaying any pending journal and reloading the intention log
// from the on-disk WAL.
func NewStableAt(dir string) (*Stable, error) {
	backing, _, err := OpenFileStore(dir)
	if err != nil {
		return nil, err
	}
	wf, index, err := openWALFile(dir)
	if err != nil {
		return nil, err
	}
	s := &Stable{backing: backing}
	if err := s.reloadFromBacking(); err != nil {
		wf.f.Close()
		return nil, err
	}
	s.wal = newWAL(s, wf, index)
	s.intentions = &IntentionLog{wal: s.wal}
	return s, nil
}

// reloadFromBacking rebuilds the in-memory object cache from the
// backing store. Caller must ensure no concurrent mutation.
func (s *Stable) reloadFromBacking() error {
	objs, err := s.backing.List()
	if err != nil {
		return err
	}
	data := make(map[ids.ObjectID]State, len(objs))
	for _, id := range objs {
		st, err := s.backing.Read(id)
		if err != nil {
			return err
		}
		data[id] = st
	}
	s.data = data
	return nil
}

var _ Store = (*Stable)(nil)

// Read implements Store.
func (s *Stable) Read(id ids.ObjectID) (State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return nil, ErrCrashed
	}
	st, ok := s.data[id]
	if !ok {
		return nil, ErrNotFound
	}
	return cloneState(st), nil
}

// Write implements Store. A single write is atomic.
func (s *Stable) Write(id ids.ObjectID, st State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	if s.backing != nil {
		if err := s.backing.Write(id, st); err != nil {
			return err
		}
	}
	s.data[id] = cloneState(st)
	return nil
}

// Delete implements Store.
func (s *Stable) Delete(id ids.ObjectID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	if s.backing != nil {
		if err := s.backing.Delete(id); err != nil {
			return err
		}
	}
	delete(s.data, id)
	return nil
}

// List implements Store.
func (s *Stable) List() ([]ids.ObjectID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return nil, ErrCrashed
	}
	return sortedKeys(s.data), nil
}

// ApplyBatch installs the batch atomically: either every write and delete
// takes effect (possibly completed by Recover after a crash) or none
// does. The returned error is ErrCrashed when the store is, or became,
// crashed.
func (s *Stable) ApplyBatch(b Batch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	if b.Empty() {
		return nil
	}

	point := s.pendingCrash
	s.pendingCrash = 0

	if point == CrashBeforeJournal {
		s.crashLocked()
		return ErrCrashed
	}

	if s.backing != nil {
		// Write through: the FileStore's journal file plays the role
		// the in-memory journal plays below, including the staged crash
		// points.
		err := s.backing.applyBatchAt(b, point)
		if errors.Is(err, errCrashPoint) {
			s.crashLocked()
			return ErrCrashed
		}
		if err != nil {
			return err
		}
		s.applyLocked(b)
		return nil
	}

	// Force the journal record. From this point the batch is durable:
	// a crash is repaired by Recover.
	s.journal = cloneBatch(b)

	if point == CrashAfterJournal {
		s.crashLocked()
		return ErrCrashed
	}

	if point == CrashMidApply {
		s.applyHalfLocked(b)
		s.crashLocked()
		return ErrCrashed
	}

	s.applyLocked(b)
	s.journal = nil
	return nil
}

func (s *Stable) applyLocked(b Batch) {
	for id, st := range b.Writes {
		s.data[id] = cloneState(st)
	}
	for _, id := range b.Deletes {
		delete(s.data, id)
	}
}

func (s *Stable) applyHalfLocked(b Batch) {
	n := 0
	half := len(b.Writes) / 2
	for _, id := range sortedKeys(b.Writes) {
		if n >= half {
			break
		}
		s.data[id] = cloneState(b.Writes[id])
		n++
	}
}

// Crash models a node crash. Durable data (including the journal and the
// intention log) is preserved; the store rejects operations until
// Recover.
func (s *Stable) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashLocked()
}

func (s *Stable) crashLocked() {
	s.crashed = true
	if s.wal != nil {
		// Invalidate in-flight WAL batches: a force completing after
		// the crash must fail its waiters, not install records on a
		// store that was down.
		s.wal.gen.Add(1)
	}
}

// CrashDuringNextBatch arms a crash injection for the next ApplyBatch.
func (s *Stable) CrashDuringNextBatch(p CrashPoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pendingCrash = p
}

// Crashed reports whether the store is currently crashed.
func (s *Stable) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// Recover restarts a crashed store, completing any journalled batch
// (redo), and returns whether a batch was repaired. A file-backed store
// replays the on-disk journal and reloads the object cache and the
// intention log from disk, so recovery sees exactly what was durable at
// the crash.
func (s *Stable) Recover() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashed = false
	if s.backing != nil {
		repaired, err := s.backing.replayJournal()
		if err == nil {
			err = s.reloadFromBacking()
		}
		if err != nil {
			// Disk trouble on recovery: stay crashed rather than serve
			// a partial view.
			s.crashed = true
			return false
		}
		s.wal.reloadFromFile()
		return repaired
	}
	if s.journal == nil {
		return false
	}
	s.applyLocked(*s.journal)
	s.journal = nil
	return true
}

// Intentions returns the store's intention log. The log shares the
// store's crash state.
func (s *Stable) Intentions() *IntentionLog {
	return s.intentions
}

// WAL returns the store's write-ahead log, for tuning (group-commit
// window, simulated force latency) and flush observation.
func (s *Stable) WAL() *WAL {
	return s.wal
}

// CrashDuringNextForce arms a crash injection inside the WAL's next
// force: the node dies mid group-commit window, with every transaction
// waiting in the batch unforced.
func (s *Stable) CrashDuringNextForce() {
	s.wal.crashNextForce.Store(true)
}

func cloneBatch(b Batch) *Batch {
	out := Batch{Writes: make(map[ids.ObjectID]State, len(b.Writes))}
	for id, st := range b.Writes {
		out.Writes[id] = cloneState(st)
	}
	out.Deletes = append(out.Deletes, b.Deletes...)
	return &out
}

func sortedKeys(m map[ids.ObjectID]State) []ids.ObjectID {
	out := make([]ids.ObjectID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IntentionStatus is the durable state of a distributed action at a
// participant or coordinator (presumed-abort two-phase commit).
type IntentionStatus int

// Intention statuses.
const (
	// IntentionPrepared: a participant has forced its write set and
	// votes yes; the outcome is in doubt until the coordinator decides.
	IntentionPrepared IntentionStatus = iota + 1
	// IntentionCommitted: the decision (or the applied outcome) is
	// commit.
	IntentionCommitted
	// IntentionAborted: the decision is abort.
	IntentionAborted
)

// String renders the status for logs and traces.
func (st IntentionStatus) String() string {
	switch st {
	case IntentionPrepared:
		return "prepared"
	case IntentionCommitted:
		return "committed"
	case IntentionAborted:
		return "aborted"
	default:
		return fmt.Sprintf("status(%d)", int(st))
	}
}

// Intention is one durable record of the commit protocol.
type Intention struct {
	Action      ids.ActionID
	Status      IntentionStatus
	Writes      Batch
	Coordinator ids.NodeID
	// Participants is recorded by the coordinator with its decision,
	// so recovery can re-drive the completion phase.
	Participants []ids.NodeID
	// TraceID and TraceSpan carry the transaction's distributed-trace
	// identity (raw, to keep store free of a trace dependency), so a
	// recovery re-drive continues the original trace instead of
	// starting a fresh one.
	TraceID   uint64
	TraceSpan uint64
}

// IntentionLog is the stable log consulted during crash recovery of the
// commit protocol. It shares fate with its owning Stable store: records
// survive crashes, and operations fail while the store is crashed.
//
// The log is a view over the store's write-ahead log: Record and Forget
// append entries and return once the group-commit batch holding them is
// forced, so concurrent transactions share forces instead of paying one
// each.
type IntentionLog struct {
	wal *WAL
}

// Record durably stores (or overwrites) the intention for the action.
func (l *IntentionLog) Record(in Intention) error { return l.wal.Record(in) }

// Lookup returns the intention recorded for the action.
func (l *IntentionLog) Lookup(a ids.ActionID) (Intention, bool, error) { return l.wal.Lookup(a) }

// Forget removes the record once the outcome is fully applied and
// acknowledged.
func (l *IntentionLog) Forget(a ids.ActionID) error { return l.wal.Forget(a) }

// Pending returns all records still in the log, for recovery scans.
func (l *IntentionLog) Pending() ([]Intention, error) { return l.wal.Pending() }
