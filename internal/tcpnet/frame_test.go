package tcpnet

import (
	"bytes"
	"io"
	"testing"
)

// TestReadPayloadSizes round-trips payloads below, at and above the
// incremental-read chunk size.
func TestReadPayloadSizes(t *testing.T) {
	for _, size := range []int{0, 1, readChunk - 1, readChunk, readChunk + 1, 3*readChunk + 17} {
		want := make([]byte, size)
		for i := range want {
			want[i] = byte(i)
		}
		got, err := readPayload(bytes.NewReader(want), int64(size))
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("size %d: payload mismatch", size)
		}
	}
}

// TestReadPayloadTruncated feeds a length prefix larger than the bytes
// that ever arrive: the reader must fail with an unexpected EOF after
// reading what there was, instead of blocking on a huge upfront
// allocation.
func TestReadPayloadTruncated(t *testing.T) {
	const claimed = maxFrame // adversarial prefix: 16 MiB
	data := bytes.Repeat([]byte("x"), 100)
	_, err := readPayload(bytes.NewReader(data), int64(claimed))
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("readPayload on truncated stream = %v, want io.ErrUnexpectedEOF", err)
	}
}
