package tcpnet_test

import (
	"context"
	"net"
	"testing"
	"time"

	"mca/internal/clock"
	"mca/internal/ids"
	"mca/internal/tcpnet"
)

// recvN drains n datagrams from e, failing the test on timeout.
func recvN(t *testing.T, e *tcpnet.Endpoint, n int, timeout time.Duration) []string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var got []string
	for len(got) < n {
		d, err := e.Recv(ctx)
		if err != nil {
			t.Fatalf("Recv after %d/%d datagrams: %v", len(got), n, err)
		}
		got = append(got, string(d.Payload))
	}
	return got
}

// TestCoalescingLingerBatchesUnderFakeClock drives the flush-on-idle
// path deterministically: with a large batch bound and a pending linger
// window on a fake clock, queued datagrams accumulate in the writer —
// nothing reaches the peer — until the clock advances, and then they
// all flush as one writev batch.
func TestCoalescingLingerBatchesUnderFakeClock(t *testing.T) {
	fake := clock.NewFake()
	nw := tcpnet.NewNetwork()
	nw.SetClock(fake)
	nw.SetCoalescing(1<<20, 256, 50*time.Millisecond)
	a := newEndpoint(t, nw)
	b := newEndpoint(t, nw)

	before := tcpnet.ReadWriterStats()
	const frames = 10
	for i := 0; i < frames; i++ {
		if err := a.Send(b.ID(), []byte{byte('a' + i)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	// Wait for the writer to arm its linger timer and drain the queue
	// into its pending batch.
	deadline := time.Now().Add(2 * time.Second)
	for fake.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("writer never armed its linger timer")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let the drain finish

	// The linger window is open: nothing may have been flushed yet.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	if _, err := b.Recv(ctx); err == nil {
		cancel()
		t.Fatal("datagram arrived before the linger window closed")
	}
	cancel()

	fake.Advance(50 * time.Millisecond)
	// A straggler frame the writer had not yet drained when the window
	// closed starts a second linger window; keep advancing until all
	// frames arrive so the test cannot hang on that scheduling race.
	received := 0
	hard := time.Now().Add(5 * time.Second)
	for received < frames {
		rctx, rcancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		_, err := b.Recv(rctx)
		rcancel()
		if err == nil {
			received++
			continue
		}
		if time.Now().After(hard) {
			t.Fatalf("received %d datagrams, want %d", received, frames)
		}
		fake.Advance(50 * time.Millisecond)
	}
	after := tcpnet.ReadWriterStats()
	if n := after.BatchFrames - before.BatchFrames; n != frames {
		t.Fatalf("writer flushed %d frames, want %d", n, frames)
	}
	if n := after.Batches - before.Batches; n < 1 || n > 2 {
		t.Fatalf("flush took %d writev batches, want 1 (2 tolerated for a straggler), for %d frames", n, frames)
	}
}

// TestSendQueueDropsOnOverflow wedges a destination that accepts the
// connection but never reads: once the kernel buffers and the writer
// queue fill, Send must keep returning immediately and drop datagrams
// (UDP-style) instead of blocking the caller.
func TestSendQueueDropsOnOverflow(t *testing.T) {
	nw := tcpnet.NewNetwork()
	nw.SetCoalescing(256<<10, 4, 0)
	a := newEndpoint(t, nw)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	hold := make(chan struct{})
	t.Cleanup(func() { close(hold) })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		<-hold // accept, never read, until the test tears down
	}()
	blackhole := ids.NodeID(424242)
	nw.Register(blackhole, ln.Addr().String())

	before := tcpnet.ReadWriterStats()
	payload := make([]byte, 64<<10)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 400; i++ { // 25 MiB >> any kernel buffering
			if err := a.Send(blackhole, payload); err != nil {
				t.Errorf("Send: %v", err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Send blocked: queue overflow must drop, not stall the caller")
	}
	after := tcpnet.ReadWriterStats()
	if after.QueueDrops == before.QueueDrops {
		t.Fatal("no queue drops recorded despite a wedged destination")
	}
}

// TestDirectWriteMode covers the non-coalescing baseline: every Send is
// its own vectored write and datagrams still round-trip.
func TestDirectWriteMode(t *testing.T) {
	nw := tcpnet.NewNetwork()
	nw.SetDirectWrite(true)
	a := newEndpoint(t, nw)
	b := newEndpoint(t, nw)

	before := tcpnet.ReadWriterStats()
	for i := 0; i < 5; i++ {
		if err := a.Send(b.ID(), []byte{byte('0' + i)}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	got := recvN(t, b, 5, 5*time.Second)
	if len(got) != 5 {
		t.Fatalf("received %d datagrams, want 5", len(got))
	}
	after := tcpnet.ReadWriterStats()
	if n := after.DirectWrites - before.DirectWrites; n != 5 {
		t.Fatalf("direct writes = %d, want 5", n)
	}
	if after.Batches != before.Batches {
		t.Fatal("coalescing writer ran in direct mode")
	}
}

// TestCrashRestartOverTCP checks the endpoint's fail-silence model:
// a crashed endpoint neither receives nor sends, and after Restart
// traffic flows again over freshly dialed connections.
func TestCrashRestartOverTCP(t *testing.T) {
	nw := tcpnet.NewNetwork()
	a := newEndpoint(t, nw)
	b := newEndpoint(t, nw)

	if err := a.Send(b.ID(), []byte("pre")); err != nil {
		t.Fatal(err)
	}
	if got := recvN(t, b, 1, 5*time.Second); got[0] != "pre" {
		t.Fatalf("got %q", got[0])
	}

	b.Crash()
	if !b.Crashed() {
		t.Fatal("Crashed() = false after Crash")
	}
	if err := b.Send(a.ID(), []byte("x")); err != tcpnet.ErrCrashed {
		t.Fatalf("Send on crashed endpoint = %v, want ErrCrashed", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	if _, err := b.Recv(ctx); err != tcpnet.ErrCrashed {
		cancel()
		t.Fatalf("Recv on crashed endpoint = %v, want ErrCrashed", err)
	}
	cancel()
	// Datagrams to a crashed node are lost silently, like netsim.
	if err := a.Send(b.ID(), []byte("lost")); err != nil {
		t.Fatalf("Send to crashed node = %v, want nil (silent loss)", err)
	}

	b.Restart()
	// The first sends after the crash may be lost while a's cached
	// connection discovers it is broken; datagram semantics say retry.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	gotCh := make(chan string, 1)
	go func() {
		d, err := b.Recv(ctx2)
		if err == nil {
			gotCh <- string(d.Payload)
		}
	}()
	for {
		if err := a.Send(b.ID(), []byte("post")); err != nil {
			t.Fatalf("Send after restart: %v", err)
		}
		select {
		case got := <-gotCh:
			if got != "post" {
				t.Fatalf("got %q after restart", got)
			}
			return
		case <-time.After(50 * time.Millisecond):
		case <-ctx2.Done():
			t.Fatal("no datagram delivered after restart")
		}
	}
}
