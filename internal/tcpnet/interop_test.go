package tcpnet_test

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"sync/atomic"
	"testing"
	"time"

	"mca/internal/ids"
	"mca/internal/rpc"
	"mca/internal/tcpnet"
)

// legacyEnvelope mirrors the pre-binary JSON wire format from the
// outside: this test speaks it byte for byte (JSON envelope inside a
// CRC32 frame), exactly what a peer built before the binary codec puts
// on the wire, without reaching into the rpc package's internals.
type legacyEnvelope struct {
	Kind   int             `json:"kind"`
	CallID uint64          `json:"callId"`
	Origin ids.NodeID      `json:"origin"`
	Method string          `json:"method,omitempty"`
	Body   json.RawMessage `json:"body,omitempty"`
	ErrMsg string          `json:"errMsg,omitempty"`
	IsErr  bool            `json:"isErr,omitempty"`
}

func legacyFrame(t *testing.T, env legacyEnvelope) []byte {
	t.Helper()
	j, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 4+len(j))
	binary.BigEndian.PutUint32(out[:4], crc32.ChecksumIEEE(j))
	copy(out[4:], j)
	return out
}

func legacyUnframe(payload []byte) ([]byte, bool) {
	if len(payload) < 4 {
		return nil, false
	}
	body := payload[4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(payload[:4]) {
		return nil, false
	}
	return body, true
}

// legacyPeer serves "echo" speaking only JSON envelopes over a tcpnet
// endpoint; binary envelopes fail its json.Unmarshal and are dropped,
// just as on a real old build.
type legacyPeer struct {
	ep            *tcpnet.Endpoint
	binaryDropped atomic.Int64
	replies       chan legacyEnvelope
	done          chan struct{}
}

func startLegacyPeer(t *testing.T, ep *tcpnet.Endpoint) *legacyPeer {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	p := &legacyPeer{ep: ep, replies: make(chan legacyEnvelope, 16), done: make(chan struct{})}
	go p.loop(ctx)
	t.Cleanup(func() {
		cancel()
		ep.Close()
		<-p.done
	})
	return p
}

func (p *legacyPeer) loop(ctx context.Context) {
	defer close(p.done)
	for {
		d, err := p.ep.Recv(ctx)
		if err != nil {
			return
		}
		body, ok := legacyUnframe(d.Payload)
		if !ok {
			continue
		}
		var env legacyEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			p.binaryDropped.Add(1) // the old-build failure mode for binary envelopes
			continue
		}
		switch env.Kind {
		case 1: // request
			if env.Method != "echo" {
				continue
			}
			resp := legacyEnvelope{Kind: 2, CallID: env.CallID, Origin: p.ep.ID(), Body: env.Body}
			j, err := json.Marshal(resp)
			if err != nil {
				continue
			}
			out := make([]byte, 4+len(j))
			binary.BigEndian.PutUint32(out[:4], crc32.ChecksumIEEE(j))
			copy(out[4:], j)
			//mcalint:ignore errdrop test peer; best-effort reply like the real one
			_ = p.ep.Send(d.From, out)
		case 2: // reply
			select {
			case p.replies <- env:
			default:
			}
		}
	}
}

type tcpEchoReq struct {
	Text string `json:"text"`
}

// TestInteropNewCallsLegacyPeerOverTCP: the binary-default caller must
// complete a call to a JSON-only peer over real sockets via the
// retransmission fallback.
func TestInteropNewCallsLegacyPeerOverTCP(t *testing.T) {
	nw := tcpnet.NewNetwork()
	epNew := newEndpoint(t, nw)
	epOld, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	old := startLegacyPeer(t, epOld)

	caller := rpc.NewPeerOn(epNew, rpc.Options{RetryInterval: 5 * time.Millisecond})
	caller.Start()
	t.Cleanup(caller.Stop)

	var resp tcpEchoReq
	if err := caller.Call(context.Background(), epOld.ID(), "echo", tcpEchoReq{Text: "legacy-tcp"}, &resp); err != nil {
		t.Fatalf("Call to legacy peer over TCP: %v", err)
	}
	if resp.Text != "legacy-tcp" {
		t.Fatalf("resp = %+v", resp)
	}
	if old.binaryDropped.Load() == 0 {
		t.Fatal("legacy peer never dropped a binary envelope: fallback not exercised")
	}
}

// TestInteropLegacyCallsNewPeerOverTCP: a legacy JSON request over real
// sockets is served and answered in JSON.
func TestInteropLegacyCallsNewPeerOverTCP(t *testing.T) {
	nw := tcpnet.NewNetwork()
	epNew := newEndpoint(t, nw)
	epOld, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	old := startLegacyPeer(t, epOld)

	serving := rpc.NewPeerOn(epNew, rpc.Options{})
	serving.Handle("echo", func(_ context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
		return body, nil
	})
	serving.Start()
	t.Cleanup(serving.Stop)

	req := legacyFrame(t, legacyEnvelope{Kind: 1, CallID: 0xBEEF, Origin: epOld.ID(), Method: "echo", Body: json.RawMessage(`{"text":"old-caller"}`)})
	if err := epOld.Send(epNew.ID(), req); err != nil {
		t.Fatal(err)
	}
	select {
	case reply := <-old.replies:
		if reply.IsErr {
			t.Fatalf("reply error: %s", reply.ErrMsg)
		}
		var resp tcpEchoReq
		if err := json.Unmarshal(reply.Body, &resp); err != nil || resp.Text != "old-caller" {
			t.Fatalf("reply body %s (err %v)", reply.Body, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("legacy caller got no reply within 5s")
	}
	if old.binaryDropped.Load() != 0 {
		t.Fatalf("new peer answered a JSON-only caller with %d binary frames", old.binaryDropped.Load())
	}
}
