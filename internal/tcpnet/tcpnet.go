// Package tcpnet is a real-network transport for the RPC layer: length-
// prefixed datagrams over TCP on the loopback (or any) interface. It
// implements rpc.Transport, so every protocol built for the simulated
// LAN — at-most-once RPC, two-phase commit, the replicated name server —
// runs unchanged over actual sockets.
//
// A Network is the address book mapping node identifiers to listen
// addresses; in a real deployment it would be static configuration or a
// discovery service. Endpoints reuse one outbound connection per
// destination and accept any number of inbound connections.
//
// The send path coalesces: each outbound connection is owned by a
// writer goroutine fed through a bounded queue, and every flush writes
// all queued frames in one writev (net.Buffers) — concurrent 2PC
// fan-outs to the same peer share syscalls the way the WAL's group
// commit shares fsyncs. The queue drops on overflow, keeping datagram
// semantics: the RPC layer's retransmission owns reliability, exactly
// as it does against a full UDP socket buffer.
package tcpnet

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"mca/internal/clock"
	"mca/internal/ids"
	"mca/internal/rpc"
)

// Errors reported by the transport.
var (
	// ErrClosed is returned by operations on a closed endpoint.
	ErrClosed = errors.New("tcpnet: endpoint closed")
	// ErrCrashed is returned by operations on a crashed endpoint
	// (fail-silence, matching netsim: a crashed node neither sends nor
	// receives until Restart). It is transient: the node may restart.
	ErrCrashed error = &transientError{msg: "tcpnet: endpoint crashed"}
	// ErrUnknownNode is returned when no address is registered for
	// the destination. It is transient (it satisfies rpc's
	// TransientError marker): the node may register later, so the RPC
	// layer keeps retransmitting instead of failing the call.
	ErrUnknownNode error = &transientError{msg: "tcpnet: unknown node"}
	// ErrTooLarge is returned for payloads above the frame limit.
	ErrTooLarge = errors.New("tcpnet: payload too large")
)

// transientError is a send error that may heal on retry; see
// rpc.TransientError.
type transientError struct{ msg string }

func (e *transientError) Error() string   { return e.msg }
func (e *transientError) Transient() bool { return true }

// maxFrame bounds a single datagram (16 MiB): defends the reader
// against corrupt length prefixes.
const maxFrame = 16 << 20

// readChunk is the unit in which large frame payloads are read: the
// reader allocates at most this much ahead of the bytes actually
// received, so a corrupt length prefix cannot force a 16 MiB
// allocation per connection.
const readChunk = 64 << 10

// readBufSize is each inbound connection's bufio read buffer: one
// kernel read drains a whole coalesced batch, so the receive side
// saves syscalls symmetrically with the writev send side.
const readBufSize = 64 << 10

// frameHeaderLen is the per-datagram wire overhead: 4-byte big-endian
// payload length plus 8-byte big-endian sender id.
const frameHeaderLen = 12

// dialTimeout bounds an outbound connection attempt. Send runs on the
// caller's goroutine — for RPC, inside the retransmission loop — so a
// blackholed address must not stall it for the OS connect timeout
// (which can exceed a minute); it is set well below rpc's default 2s
// CallTimeout so a failed dial still leaves room for retries.
const dialTimeout = 500 * time.Millisecond

// Defaults for the coalescing writer.
const (
	defaultBatchBytes = 256 << 10
	defaultQueueLen   = 256
)

// maxYieldRounds bounds how many times the writer yields the processor
// to gather a larger batch before flushing. Each round costs one
// scheduler pass (sub-microsecond when the machine is idle), so the
// bound caps the latency a quiet sender can add while still letting a
// busy pipeline coalesce whole bursts into single writev calls.
const maxYieldRounds = 8

// Network is the shared address book (and transport configuration) of a
// set of TCP endpoints.
type Network struct {
	mu    sync.Mutex
	addrs map[ids.NodeID]string

	clk        clock.Clock
	direct     bool
	batchBytes int
	queueLen   int
	linger     time.Duration
}

// NewNetwork builds an empty address book with the default coalescing
// configuration.
func NewNetwork() *Network {
	return &Network{
		addrs:      make(map[ids.NodeID]string),
		clk:        clock.Real(),
		batchBytes: defaultBatchBytes,
		queueLen:   defaultQueueLen,
	}
}

// SetClock substitutes the time source used by endpoints created after
// the call (flush-linger timers). Default clock.Real().
func (n *Network) SetClock(c clock.Clock) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.clk = c
}

// SetDirectWrite disables the coalescing writer for endpoints created
// after the call: every Send performs its own (vectored) write, the
// pre-coalescing behaviour. Kept for baseline measurement (E24) and as
// an escape hatch.
func (n *Network) SetDirectWrite(direct bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.direct = direct
}

// SetCoalescing tunes the writer for endpoints created after the call:
// batchBytes bounds the bytes flushed in one writev, queueLen the
// frames queued per destination (overflow drops, like a UDP send
// buffer), and linger how long a flush waits for more frames once the
// queue runs dry — 0 (the default) flushes once draining plus a few
// scheduler yields (see maxYieldRounds) stage nothing more, adding no
// latency while still batching whatever concurrent senders were about
// to queue. The linger timer runs on the network's clock.
func (n *Network) SetCoalescing(batchBytes, queueLen int, linger time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if batchBytes > 0 {
		n.batchBytes = batchBytes
	}
	if queueLen > 0 {
		n.queueLen = queueLen
	}
	n.linger = linger
}

// Register binds a node identifier to a dialable address. Listen does
// this automatically; Register exists for static cross-process setups.
func (n *Network) Register(id ids.NodeID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.addrs[id] = addr
}

func (n *Network) lookup(id ids.NodeID) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	addr, ok := n.addrs[id]
	return addr, ok
}

// sender owns one outbound connection. In coalescing mode ch feeds the
// connection's writer goroutine; in direct mode ch is nil and Send
// writes the frame itself.
type sender struct {
	conn net.Conn
	ch   chan *[]byte
	stop chan struct{}
	once sync.Once
}

// close tears the sender down (idempotently): the writer goroutine, if
// any, observes stop and exits; an in-flight writev fails on the closed
// connection.
func (s *sender) close() {
	s.once.Do(func() {
		close(s.stop)
		s.conn.Close()
	})
}

// Endpoint is one TCP transport endpoint.
type Endpoint struct {
	id  ids.NodeID
	net *Network
	ln  net.Listener

	clk        clock.Clock
	direct     bool
	batchBytes int
	queueLen   int
	linger     time.Duration

	mu      sync.Mutex
	senders map[ids.NodeID]*sender // outbound, one per destination
	inbound map[net.Conn]struct{}  // accepted connections
	closed  bool
	crashed bool

	inbox chan rpc.Datagram
	wg    sync.WaitGroup
}

var _ rpc.Transport = (*Endpoint)(nil)

// Listen opens an endpoint on addr ("127.0.0.1:0" picks a free port),
// registers it in the network's address book, and starts accepting.
func (n *Network) Listen(addr string) (*Endpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet listen: %w", err)
	}
	n.mu.Lock()
	clk, direct, batchBytes, queueLen, linger := n.clk, n.direct, n.batchBytes, n.queueLen, n.linger
	n.mu.Unlock()
	e := &Endpoint{
		id:         ids.NewNodeID(),
		net:        n,
		ln:         ln,
		clk:        clk,
		direct:     direct,
		batchBytes: batchBytes,
		queueLen:   queueLen,
		linger:     linger,
		senders:    make(map[ids.NodeID]*sender),
		inbound:    make(map[net.Conn]struct{}),
		inbox:      make(chan rpc.Datagram, 256),
	}
	n.Register(e.id, ln.Addr().String())
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// ID implements rpc.Transport.
func (e *Endpoint) ID() ids.NodeID { return e.id }

// Addr returns the endpoint's listen address.
func (e *Endpoint) Addr() string { return e.ln.Addr().String() }

func (e *Endpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			return
		}
		e.inbound[conn] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *Endpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		conn.Close()
		e.mu.Lock()
		delete(e.inbound, conn)
		e.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, readBufSize)
	var header [frameHeaderLen]byte
	for {
		d, err := readFrame(br, header[:])
		if err != nil {
			return
		}
		tcpBytesRead.Add(uint64(len(d.Payload)))
		d.To = e.id
		e.mu.Lock()
		closed, crashed := e.closed, e.crashed
		e.mu.Unlock()
		if closed {
			return
		}
		if crashed {
			continue // fail-silent: frames to a crashed node are lost
		}
		select {
		case e.inbox <- d:
		default:
			// Inbox overflow: drop, like a UDP receive buffer. The
			// RPC layer retransmits.
			inboxDrops.Inc()
		}
	}
}

// tcpFramePool recycles staged outbound frames (header + payload in one
// contiguous buffer) between Send and the writer goroutines.
var tcpFramePool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

const tcpFramePoolMax = 64 << 10

func getTCPFrame() *[]byte { return tcpFramePool.Get().(*[]byte) }

func putTCPFrame(bp *[]byte) {
	if cap(*bp) > tcpFramePoolMax {
		return
	}
	tcpFramePool.Put(bp)
}

// stageFrame copies payload into a pooled wire frame owned by the
// writer queue: Send's contract lets the RPC layer reuse payload the
// moment Send returns, so queued frames must hold their own bytes.
func stageFrame(from ids.NodeID, payload []byte) *[]byte {
	bp := getTCPFrame()
	b := (*bp)[:0]
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.BigEndian.AppendUint64(b, uint64(from))
	b = append(b, payload...)
	*bp = b
	return bp
}

// Send implements rpc.Transport: best-effort datagram delivery over a
// cached connection. In the default coalescing mode the frame is staged
// onto the destination's writer queue and flushed — together with
// whatever else is queued — in one writev; a full queue drops the
// datagram. Connection failures likewise drop the datagram (and the
// cached connection) rather than erroring: the RPC layer's
// retransmission owns reliability.
func (e *Endpoint) Send(to ids.NodeID, payload []byte) error {
	if len(payload) > maxFrame {
		return ErrTooLarge
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	if e.crashed {
		e.mu.Unlock()
		return ErrCrashed
	}
	s, ok := e.senders[to]
	e.mu.Unlock()

	if !ok {
		var err error
		s, err = e.dial(to)
		if err != nil {
			return err
		}
		if s == nil {
			return nil // destination down: datagram lost, retransmission will retry
		}
	}

	if s.ch == nil {
		// Direct mode: one vectored write per datagram on the caller's
		// goroutine (the pre-coalescing baseline).
		if err := writeFrame(s.conn, e.id, payload); err != nil {
			writeDrops.Inc()
			e.dropSender(to, s)
			return nil
		}
		directWrites.Inc()
		tcpBytesWritten.Add(uint64(frameHeaderLen + len(payload)))
		return nil
	}

	frame := stageFrame(e.id, payload)
	select {
	case s.ch <- frame:
	default:
		// Queue overflow: drop the datagram, keeping Send non-blocking
		// (datagram semantics; the writer is stuck or outrun).
		putTCPFrame(frame)
		sendQueueDrops.Inc()
	}
	return nil
}

// dial establishes (or, racing another Send, adopts) the sender for a
// destination. A nil, nil return means the destination was unreachable:
// the datagram is lost and retransmission will retry.
func (e *Endpoint) dial(to ids.NodeID) (*sender, error) {
	addr, known := e.net.lookup(to)
	if !known {
		return nil, ErrUnknownNode
	}
	fresh, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			dialsTimeout.Inc()
		} else {
			dialsError.Inc()
		}
		return nil, nil
	}
	dialsOK.Inc()
	e.mu.Lock()
	if e.closed || e.crashed {
		err := ErrClosed
		if e.crashed {
			err = ErrCrashed
		}
		e.mu.Unlock()
		fresh.Close()
		return nil, err
	}
	if existing, raced := e.senders[to]; raced {
		e.mu.Unlock()
		fresh.Close()
		return existing, nil
	}
	s := &sender{conn: fresh, stop: make(chan struct{})}
	if !e.direct {
		s.ch = make(chan *[]byte, e.queueLen)
		e.wg.Add(1)
		go e.writeLoop(to, s)
	}
	e.senders[to] = s
	e.mu.Unlock()
	return s, nil
}

// dropSender discards a (broken) sender: future Sends re-dial.
func (e *Endpoint) dropSender(to ids.NodeID, s *sender) {
	e.mu.Lock()
	if e.senders[to] == s {
		delete(e.senders, to)
	}
	e.mu.Unlock()
	s.close()
}

// writeLoop owns one outbound connection: it blocks for the first
// queued frame, opportunistically drains whatever else concurrent
// senders queued (bounded by batchBytes, optionally lingering on the
// injected clock for stragglers), and flushes the whole batch in a
// single writev. Frames return to the pool after the flush.
func (e *Endpoint) writeLoop(to ids.NodeID, s *sender) {
	defer e.wg.Done()
	refs := make([]*[]byte, 0, 64)
	bufs := make(net.Buffers, 0, 64)
	for {
		select {
		case <-s.stop:
			return
		case first := <-s.ch:
			refs = append(refs[:0], first)
			size := len(*first)
			var lingerT clock.Timer
			var lingerC <-chan time.Time
			if e.linger > 0 {
				lingerT = e.clk.NewTimer(e.linger)
				lingerC = lingerT.C()
			}
			yields := 0
		collect:
			for size < e.batchBytes {
				select {
				case f := <-s.ch:
					refs = append(refs, f)
					size += len(*f)
				default:
					if lingerC == nil {
						// Queue drained. Yield to let already-runnable
						// goroutines — handlers, reply loops, other
						// callers — stage the frames they are about to
						// send, then re-check. A yield that stages
						// nothing means the pipeline is quiescent, so
						// flushing now adds no latency; a yield that
						// does lets one writev carry the whole burst.
						if yields >= maxYieldRounds {
							break collect
						}
						yields++
						runtime.Gosched()
						select {
						case f := <-s.ch:
							refs = append(refs, f)
							size += len(*f)
						case <-s.stop:
							for _, f := range refs {
								putTCPFrame(f)
							}
							return
						default:
							break collect // quiescent: flush now
						}
						continue
					}
					select {
					case f := <-s.ch:
						refs = append(refs, f)
						size += len(*f)
					case <-lingerC:
						lingerC = nil
					case <-s.stop:
						lingerT.Stop()
						for _, f := range refs {
							putTCPFrame(f)
						}
						return
					}
				}
			}
			if lingerT != nil {
				lingerT.Stop()
			}
			bufs = bufs[:0]
			for _, f := range refs {
				bufs = append(bufs, *f)
			}
			// WriteTo consumes the slice it is given, so hand it a
			// separate header; one call is one writev for the whole
			// batch (internal/poll holds the fd write lock across it).
			consumable := bufs
			_, err := consumable.WriteTo(s.conn)
			for _, f := range refs {
				putTCPFrame(f)
			}
			if err != nil {
				writeDrops.Inc()
				e.dropSender(to, s)
				return
			}
			writeBatches.Inc()
			writeBatchFrames.Add(uint64(len(refs)))
			tcpBytesWritten.Add(uint64(size))
		}
	}
}

// Recv implements rpc.Transport.
func (e *Endpoint) Recv(ctx context.Context) (rpc.Datagram, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return rpc.Datagram{}, ErrClosed
	}
	if e.crashed {
		e.mu.Unlock()
		return rpc.Datagram{}, ErrCrashed
	}
	e.mu.Unlock()
	select {
	case d, ok := <-e.inbox:
		if !ok {
			return rpc.Datagram{}, ErrClosed
		}
		return d, nil
	case <-ctx.Done():
		return rpc.Datagram{}, ctx.Err()
	}
}

// teardownConns closes every outbound sender and inbound connection.
func (e *Endpoint) teardownConns() {
	e.mu.Lock()
	senders := make([]*sender, 0, len(e.senders))
	for _, s := range e.senders {
		senders = append(senders, s)
	}
	e.senders = make(map[ids.NodeID]*sender)
	conns := make([]net.Conn, 0, len(e.inbound))
	for c := range e.inbound {
		conns = append(conns, c)
	}
	e.mu.Unlock()
	for _, s := range senders {
		s.close()
	}
	for _, c := range conns {
		c.Close()
	}
}

// Crash makes the endpoint fail-silent, mirroring netsim: every
// connection drops, queued and future datagrams are lost, Send and Recv
// fail (transiently) until Restart. The listener stays bound so the
// node's address survives the crash.
func (e *Endpoint) Crash() {
	e.mu.Lock()
	if e.crashed || e.closed {
		e.mu.Unlock()
		return
	}
	e.crashed = true
	e.mu.Unlock()
	e.teardownConns()
	// Drain the inbox: datagrams queued at a crashed node are lost with
	// its volatile memory.
	for {
		select {
		case <-e.inbox:
		default:
			return
		}
	}
}

// Restart brings a crashed endpoint back with an empty inbox.
// Connections re-establish on demand (outbound Sends re-dial; remote
// peers re-dial us at the address the listener kept).
func (e *Endpoint) Restart() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.crashed = false
}

// Crashed reports whether the endpoint is crashed.
func (e *Endpoint) Crashed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.crashed
}

// Close shuts the endpoint down and waits for its goroutines.
func (e *Endpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()

	e.ln.Close()
	e.teardownConns()
	e.wg.Wait()
}

// writeFrame writes one datagram as a length-prefixed frame (layout:
// 4-byte big-endian payload length, 8-byte big-endian sender id,
// payload bytes) in a single vectored write — two iovecs, no
// header+payload copy. One net.Buffers write is atomic against
// concurrent writers on the same connection (internal/poll serialises
// the whole vector under the fd write lock), which is what keeps the
// direct path frame-safe without a mutex.
func writeFrame(conn net.Conn, from ids.NodeID, payload []byte) error {
	var header [frameHeaderLen]byte
	binary.BigEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint64(header[4:12], uint64(from))
	bufs := net.Buffers{header[:], payload}
	_, err := bufs.WriteTo(conn)
	return err
}

// readFrame reads one frame from r into a fresh payload buffer, reusing
// the caller's 12-byte header scratch.
func readFrame(r io.Reader, header []byte) (rpc.Datagram, error) {
	if _, err := io.ReadFull(r, header[:frameHeaderLen]); err != nil {
		return rpc.Datagram{}, err
	}
	size := binary.BigEndian.Uint32(header[0:4])
	if size > maxFrame {
		return rpc.Datagram{}, ErrTooLarge
	}
	from := ids.NodeID(binary.BigEndian.Uint64(header[4:12]))
	payload, err := readPayload(r, int64(size))
	if err != nil {
		return rpc.Datagram{}, err
	}
	return rpc.Datagram{From: from, Payload: payload}, nil
}

// readPayload reads size payload bytes incrementally: memory is grown
// chunk by chunk as bytes actually arrive, so a corrupt (but in-range)
// length prefix on a connection that then stalls or closes costs at
// most one readChunk of allocation, not the full frame.
func readPayload(conn io.Reader, size int64) ([]byte, error) {
	if size <= readChunk {
		payload := make([]byte, size)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return nil, err
		}
		return payload, nil
	}
	limited := io.LimitReader(conn, size)
	payload := make([]byte, 0, readChunk)
	chunk := make([]byte, readChunk)
	for int64(len(payload)) < size {
		n, err := limited.Read(chunk)
		payload = append(payload, chunk[:n]...)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return payload, nil
}
