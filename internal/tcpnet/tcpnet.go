// Package tcpnet is a real-network transport for the RPC layer: length-
// prefixed datagrams over TCP on the loopback (or any) interface. It
// implements rpc.Transport, so every protocol built for the simulated
// LAN — at-most-once RPC, two-phase commit, the replicated name server —
// runs unchanged over actual sockets.
//
// A Network is the address book mapping node identifiers to listen
// addresses; in a real deployment it would be static configuration or a
// discovery service. Endpoints reuse one outbound connection per
// destination and accept any number of inbound connections.
package tcpnet

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"mca/internal/ids"
	"mca/internal/rpc"
)

// Errors reported by the transport.
var (
	// ErrClosed is returned by operations on a closed endpoint.
	ErrClosed = errors.New("tcpnet: endpoint closed")
	// ErrUnknownNode is returned when no address is registered for
	// the destination. It is transient (it satisfies rpc's
	// TransientError marker): the node may register later, so the RPC
	// layer keeps retransmitting instead of failing the call.
	ErrUnknownNode error = &transientError{msg: "tcpnet: unknown node"}
	// ErrTooLarge is returned for payloads above the frame limit.
	ErrTooLarge = errors.New("tcpnet: payload too large")
)

// transientError is a send error that may heal on retry; see
// rpc.TransientError.
type transientError struct{ msg string }

func (e *transientError) Error() string   { return e.msg }
func (e *transientError) Transient() bool { return true }

// maxFrame bounds a single datagram (16 MiB): defends the reader
// against corrupt length prefixes.
const maxFrame = 16 << 20

// readChunk is the unit in which large frame payloads are read: the
// reader allocates at most this much ahead of the bytes actually
// received, so a corrupt length prefix cannot force a 16 MiB
// allocation per connection.
const readChunk = 64 << 10

// dialTimeout bounds an outbound connection attempt. Send runs on the
// caller's goroutine — for RPC, inside the retransmission loop — so a
// blackholed address must not stall it for the OS connect timeout
// (which can exceed a minute); it is set well below rpc's default 2s
// CallTimeout so a failed dial still leaves room for retries.
const dialTimeout = 500 * time.Millisecond

// Network is the shared address book of a set of TCP endpoints.
type Network struct {
	mu    sync.Mutex
	addrs map[ids.NodeID]string
}

// NewNetwork builds an empty address book.
func NewNetwork() *Network {
	return &Network{addrs: make(map[ids.NodeID]string)}
}

// Register binds a node identifier to a dialable address. Listen does
// this automatically; Register exists for static cross-process setups.
func (n *Network) Register(id ids.NodeID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.addrs[id] = addr
}

func (n *Network) lookup(id ids.NodeID) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	addr, ok := n.addrs[id]
	return addr, ok
}

// Endpoint is one TCP transport endpoint.
type Endpoint struct {
	id  ids.NodeID
	net *Network
	ln  net.Listener

	mu      sync.Mutex
	conns   map[ids.NodeID]net.Conn // outbound, one per destination
	inbound map[net.Conn]struct{}   // accepted connections
	closed  bool

	inbox chan rpc.Datagram
	wg    sync.WaitGroup
}

var _ rpc.Transport = (*Endpoint)(nil)

// Listen opens an endpoint on addr ("127.0.0.1:0" picks a free port),
// registers it in the network's address book, and starts accepting.
func (n *Network) Listen(addr string) (*Endpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet listen: %w", err)
	}
	e := &Endpoint{
		id:      ids.NewNodeID(),
		net:     n,
		ln:      ln,
		conns:   make(map[ids.NodeID]net.Conn),
		inbound: make(map[net.Conn]struct{}),
		inbox:   make(chan rpc.Datagram, 256),
	}
	n.Register(e.id, ln.Addr().String())
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// ID implements rpc.Transport.
func (e *Endpoint) ID() ids.NodeID { return e.id }

// Addr returns the endpoint's listen address.
func (e *Endpoint) Addr() string { return e.ln.Addr().String() }

func (e *Endpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			return
		}
		e.inbound[conn] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *Endpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		conn.Close()
		e.mu.Lock()
		delete(e.inbound, conn)
		e.mu.Unlock()
	}()
	for {
		d, err := readFrame(conn)
		if err != nil {
			return
		}
		tcpBytesRead.Add(uint64(len(d.Payload)))
		d.To = e.id
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return
		}
		select {
		case e.inbox <- d:
		default:
			// Inbox overflow: drop, like a UDP receive buffer. The
			// RPC layer retransmits.
			inboxDrops.Inc()
		}
	}
}

// Send implements rpc.Transport: best-effort datagram delivery over a
// cached connection. Connection failures drop the datagram (and the
// cached connection) rather than erroring: the RPC layer's
// retransmission owns reliability.
func (e *Endpoint) Send(to ids.NodeID, payload []byte) error {
	if len(payload) > maxFrame {
		return ErrTooLarge
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	conn, ok := e.conns[to]
	e.mu.Unlock()

	if !ok {
		addr, known := e.net.lookup(to)
		if !known {
			return ErrUnknownNode
		}
		fresh, err := net.DialTimeout("tcp", addr, dialTimeout)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				dialsTimeout.Inc()
			} else {
				dialsError.Inc()
			}
			return nil // destination down: datagram lost, retransmission will retry
		}
		dialsOK.Inc()
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			fresh.Close()
			return ErrClosed
		}
		if existing, raced := e.conns[to]; raced {
			conn = existing
			e.mu.Unlock()
			fresh.Close()
		} else {
			e.conns[to] = fresh
			conn = fresh
			e.mu.Unlock()
		}
	}

	if err := writeFrame(conn, e.id, payload); err != nil {
		// Drop the broken connection; the datagram is lost.
		writeDrops.Inc()
		e.mu.Lock()
		if e.conns[to] == conn {
			delete(e.conns, to)
		}
		e.mu.Unlock()
		conn.Close()
		return nil
	}
	tcpBytesWritten.Add(uint64(12 + len(payload)))
	return nil
}

// Recv implements rpc.Transport.
func (e *Endpoint) Recv(ctx context.Context) (rpc.Datagram, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return rpc.Datagram{}, ErrClosed
	}
	e.mu.Unlock()
	select {
	case d, ok := <-e.inbox:
		if !ok {
			return rpc.Datagram{}, ErrClosed
		}
		return d, nil
	case <-ctx.Done():
		return rpc.Datagram{}, ctx.Err()
	}
}

// Close shuts the endpoint down and waits for its goroutines.
func (e *Endpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	conns := make([]net.Conn, 0, len(e.conns)+len(e.inbound))
	for _, c := range e.conns {
		conns = append(conns, c)
	}
	for c := range e.inbound {
		conns = append(conns, c)
	}
	e.conns = make(map[ids.NodeID]net.Conn)
	e.mu.Unlock()

	e.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	e.wg.Wait()
}

// Frame layout: 4-byte big-endian payload length, 8-byte big-endian
// sender id, payload bytes.
func writeFrame(conn net.Conn, from ids.NodeID, payload []byte) error {
	header := make([]byte, 12, 12+len(payload))
	binary.BigEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint64(header[4:12], uint64(from))
	_, err := conn.Write(append(header, payload...))
	return err
}

func readFrame(conn net.Conn) (rpc.Datagram, error) {
	header := make([]byte, 12)
	if _, err := io.ReadFull(conn, header); err != nil {
		return rpc.Datagram{}, err
	}
	size := binary.BigEndian.Uint32(header[0:4])
	if size > maxFrame {
		return rpc.Datagram{}, ErrTooLarge
	}
	from := ids.NodeID(binary.BigEndian.Uint64(header[4:12]))
	payload, err := readPayload(conn, int64(size))
	if err != nil {
		return rpc.Datagram{}, err
	}
	return rpc.Datagram{From: from, Payload: payload}, nil
}

// readPayload reads size payload bytes incrementally: memory is grown
// chunk by chunk as bytes actually arrive, so a corrupt (but in-range)
// length prefix on a connection that then stalls or closes costs at
// most one readChunk of allocation, not the full frame.
func readPayload(conn io.Reader, size int64) ([]byte, error) {
	if size <= readChunk {
		payload := make([]byte, size)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return nil, err
		}
		return payload, nil
	}
	limited := io.LimitReader(conn, size)
	payload := make([]byte, 0, readChunk)
	chunk := make([]byte, readChunk)
	for int64(len(payload)) < size {
		n, err := limited.Read(chunk)
		payload = append(payload, chunk[:n]...)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return payload, nil
}
