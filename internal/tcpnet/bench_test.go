package tcpnet_test

import (
	"context"
	"testing"
	"time"

	"mca/internal/ids"
	"mca/internal/rpc"
	"mca/internal/tcpnet"
)

type benchReq struct {
	Txn    uint64 `json:"txn"`
	Op     string `json:"op"`
	Amount int    `json:"amount"`
}

func benchPair(b *testing.B, fast bool) (*rpc.Peer, ids.NodeID) {
	b.Helper()
	nw := tcpnet.NewNetwork()
	codec := rpc.CodecBinary
	if !fast {
		nw.SetDirectWrite(true)
		codec = rpc.CodecJSON
	}
	epS, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	epC, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	opts := rpc.Options{RetryInterval: 100 * time.Millisecond, CallTimeout: 30 * time.Second, Codec: codec}
	server := rpc.NewPeerOn(epS, opts)
	caller := rpc.NewPeerOn(epC, opts)
	server.Handle("echo", func(_ context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
		return body, nil
	})
	server.Start()
	caller.Start()
	b.Cleanup(func() {
		caller.Stop()
		server.Stop()
	})
	return caller, epS.ID()
}

// BenchmarkRPCCall measures one echo call over loopback TCP on the new
// data plane (binary codec, coalescing writer). CI runs it with
// -benchmem as the allocation smoke for the call path.
func BenchmarkRPCCall(b *testing.B) {
	caller, to := benchPair(b, true)
	ctx := context.Background()
	req := benchReq{Txn: 42, Op: "transfer", Amount: 10}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			var resp benchReq
			if err := caller.Call(ctx, to, "echo", req, &resp); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRPCCallJSONBaseline is the same call on the pre-PR wire path
// (JSON envelope, one write per datagram) for comparison.
func BenchmarkRPCCallJSONBaseline(b *testing.B) {
	caller, to := benchPair(b, false)
	ctx := context.Background()
	req := benchReq{Txn: 42, Op: "transfer", Amount: 10}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			var resp benchReq
			if err := caller.Call(ctx, to, "echo", req, &resp); err != nil {
				b.Fatal(err)
			}
		}
	})
}
