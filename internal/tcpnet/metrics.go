package tcpnet

import "mca/internal/metrics"

// TCP transport telemetry, exported under mca_tcpnet_*. Sends already
// cross a syscall, so per-event striped-counter adds are noise.
var (
	dialsOK      *metrics.Counter
	dialsTimeout *metrics.Counter
	dialsError   *metrics.Counter

	tcpBytesWritten *metrics.Counter
	tcpBytesRead    *metrics.Counter
	writeDrops      *metrics.Counter
	inboxDrops      *metrics.Counter

	// Coalescing-writer telemetry: batches/frames give the syscall
	// amortisation ratio (frames ÷ batches = datagrams per writev);
	// queue drops count overflow of a destination's writer queue.
	writeBatches     *metrics.Counter
	writeBatchFrames *metrics.Counter
	sendQueueDrops   *metrics.Counter
	directWrites     *metrics.Counter
)

// WriterStats is a point-in-time snapshot of the coalescing writer's
// counters, used by experiment E24 to report syscalls saved.
type WriterStats struct {
	Batches      uint64 // writev flushes (one syscall each)
	BatchFrames  uint64 // datagrams carried by those flushes
	DirectWrites uint64 // per-datagram writes in direct mode
	QueueDrops   uint64 // datagrams dropped on writer-queue overflow
}

// ReadWriterStats snapshots the process-wide coalescing counters.
func ReadWriterStats() WriterStats {
	return WriterStats{
		Batches:      writeBatches.Value(),
		BatchFrames:  writeBatchFrames.Value(),
		DirectWrites: directWrites.Value(),
		QueueDrops:   sendQueueDrops.Value(),
	}
}

func init() {
	r := metrics.Default()
	dials := r.CounterVec("mca_tcpnet_dials_total",
		"Outbound connection attempts, by outcome.", "outcome")
	dialsOK = dials.With("ok")
	dialsTimeout = dials.With("timeout")
	dialsError = dials.With("error")
	tcpBytesWritten = r.Counter("mca_tcpnet_bytes_written_total",
		"Frame bytes written to connections (headers included).")
	tcpBytesRead = r.Counter("mca_tcpnet_bytes_read_total",
		"Frame payload bytes read from connections.")
	writeDrops = r.Counter("mca_tcpnet_write_drops_total",
		"Datagrams dropped because the cached connection's write failed.")
	inboxDrops = r.Counter("mca_tcpnet_inbox_drops_total",
		"Received datagrams dropped on inbox overflow.")
	writeBatches = r.Counter("mca_tcpnet_write_batches_total",
		"Coalesced flushes (one writev syscall each).")
	writeBatchFrames = r.Counter("mca_tcpnet_write_batch_frames_total",
		"Datagrams carried by coalesced flushes.")
	sendQueueDrops = r.Counter("mca_tcpnet_send_queue_drops_total",
		"Datagrams dropped on writer-queue overflow.")
	directWrites = r.Counter("mca_tcpnet_direct_writes_total",
		"Per-datagram writes in direct (non-coalescing) mode.")
}
