package tcpnet

import "mca/internal/metrics"

// TCP transport telemetry, exported under mca_tcpnet_*. Sends already
// cross a syscall, so per-event striped-counter adds are noise.
var (
	dialsOK      *metrics.Counter
	dialsTimeout *metrics.Counter
	dialsError   *metrics.Counter

	tcpBytesWritten *metrics.Counter
	tcpBytesRead    *metrics.Counter
	writeDrops      *metrics.Counter
	inboxDrops      *metrics.Counter
)

func init() {
	r := metrics.Default()
	dials := r.CounterVec("mca_tcpnet_dials_total",
		"Outbound connection attempts, by outcome.", "outcome")
	dialsOK = dials.With("ok")
	dialsTimeout = dials.With("timeout")
	dialsError = dials.With("error")
	tcpBytesWritten = r.Counter("mca_tcpnet_bytes_written_total",
		"Frame bytes written to connections (headers included).")
	tcpBytesRead = r.Counter("mca_tcpnet_bytes_read_total",
		"Frame payload bytes read from connections.")
	writeDrops = r.Counter("mca_tcpnet_write_drops_total",
		"Datagrams dropped because the cached connection's write failed.")
	inboxDrops = r.Counter("mca_tcpnet_inbox_drops_total",
		"Received datagrams dropped on inbox overflow.")
}
