package tcpnet_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"mca/internal/ids"
	"mca/internal/rpc"
	"mca/internal/tcpnet"
	"mca/internal/trace"
)

// TestTracePropagationOverTCP pins that the distributed-trace context
// rides the RPC envelope unchanged over the real-socket transport: the
// wire format is the transport-independent JSON envelope, so netsim
// and tcpnet deployments trace identically.
func TestTracePropagationOverTCP(t *testing.T) {
	nw := tcpnet.NewNetwork()
	a := newEndpoint(t, nw)
	b := newEndpoint(t, nw)

	opts := rpc.Options{RetryInterval: 20 * time.Millisecond, CallTimeout: 5 * time.Second}
	pa := rpc.NewPeerOn(a, opts)
	pb := rpc.NewPeerOn(b, opts)
	recA, recB := trace.NewRecorder(), trace.NewRecorder()
	recA.SetNode(a.ID())
	recB.SetNode(b.ID())
	pa.SetTracer(recA)
	pb.SetTracer(recB)

	// The reply cannot reach the caller before the handler has run, but
	// that ordering flows through the socket, which the race detector
	// does not model as synchronization — so capture under a mutex.
	var mu sync.Mutex
	var got trace.Context
	pb.Handle("traced", func(ctx context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
		mu.Lock()
		got, _ = trace.FromContext(ctx)
		mu.Unlock()
		return body, nil
	})
	pa.Start()
	pb.Start()
	t.Cleanup(pa.Stop)
	t.Cleanup(pb.Stop)

	root := trace.NewRoot()
	ctx := trace.Inject(context.Background(), root)
	type msg struct {
		Text string `json:"text"`
	}
	if err := pa.Call(ctx, b.ID(), "traced", msg{Text: "tcp"}, nil); err != nil {
		t.Fatalf("Call: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got.TraceID != root.TraceID || got.SpanID == root.SpanID || got.SpanID == 0 {
		t.Fatalf("handler context %+v, want fresh child span in trace %x", got, root.TraceID)
	}

	// The two per-node exports merge into one tree with no orphans.
	all := append(recA.Spans(), recB.Spans()...)
	all = append(all, trace.Span{TraceID: root.TraceID, SpanID: root.SpanID, Label: "op", Outcome: trace.OutcomeOK})
	tree := trace.Merge(all)
	if len(tree.Orphans) != 0 {
		t.Fatalf("merged TCP trace has %d orphans:\n%s", len(tree.Orphans), tree.Render(60))
	}
}
