package tcpnet_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"mca/internal/ids"
	"mca/internal/rpc"
	"mca/internal/tcpnet"
)

// TestCallRetriesUntilDestinationRegisters is the cross-transport retry
// test: over TCP, a destination that is not yet in the caller's address
// book must make Call keep retransmitting (ErrUnknownNode is
// transient), not fail immediately; once the address registers, the
// call completes.
func TestCallRetriesUntilDestinationRegisters(t *testing.T) {
	// Two separate address books model two processes whose discovery
	// is not yet in sync: B knows A (so replies route), but A learns
	// B's address only after the call is already in flight.
	nwA, nwB := tcpnet.NewNetwork(), tcpnet.NewNetwork()
	epA, err := nwA.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(epA.Close)
	epB, err := nwB.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(epB.Close)
	nwB.Register(epA.ID(), epA.Addr())

	opts := rpc.Options{RetryInterval: 10 * time.Millisecond, CallTimeout: 5 * time.Second}
	pa, pb := rpc.NewPeerOn(epA, opts), rpc.NewPeerOn(epB, opts)
	pb.Handle("echo", func(_ context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
		return body, nil
	})
	pa.Start()
	pb.Start()
	t.Cleanup(pa.Stop)
	t.Cleanup(pb.Stop)

	const registerAfter = 150 * time.Millisecond
	go func() {
		time.Sleep(registerAfter)
		nwA.Register(epB.ID(), epB.Addr())
	}()

	start := time.Now()
	var out string
	if err := pa.Call(context.Background(), epB.ID(), "echo", "hello", &out); err != nil {
		t.Fatalf("Call across late-registered destination = %v, want success", err)
	}
	if out != "hello" {
		t.Fatalf("echo = %q, want %q", out, "hello")
	}
	if elapsed := time.Since(start); elapsed < registerAfter {
		t.Fatalf("call completed in %v, before the destination registered at %v", elapsed, registerAfter)
	}
}

// TestLargeFrameRoundTrip pushes a payload several chunks long through
// a real connection, exercising the incremental frame reader.
func TestLargeFrameRoundTrip(t *testing.T) {
	nw := tcpnet.NewNetwork()
	a, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	b, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)

	payload := bytes.Repeat([]byte("large-frame-"), 30000) // ~350 KiB, > 5 chunks
	if err := a.Send(b.ID(), payload); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	d, err := b.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d.From != a.ID() {
		t.Fatalf("frame from %v, want %v", d.From, a.ID())
	}
	if !bytes.Equal(d.Payload, payload) {
		t.Fatalf("payload mismatch: got %d bytes, want %d", len(d.Payload), len(payload))
	}
}
