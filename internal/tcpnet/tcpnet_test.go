package tcpnet_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mca/internal/ids"
	"mca/internal/rpc"
	"mca/internal/tcpnet"
)

func newEndpoint(t *testing.T, nw *tcpnet.Network) *tcpnet.Endpoint {
	t.Helper()
	e, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestDatagramRoundTrip(t *testing.T) {
	nw := tcpnet.NewNetwork()
	a := newEndpoint(t, nw)
	b := newEndpoint(t, nw)

	if err := a.Send(b.ID(), []byte("over tcp")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	d, err := b.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if string(d.Payload) != "over tcp" || d.From != a.ID() || d.To != b.ID() {
		t.Fatalf("datagram = %+v", d)
	}
}

func TestSendToUnknownNode(t *testing.T) {
	nw := tcpnet.NewNetwork()
	a := newEndpoint(t, nw)
	if err := a.Send(99999, []byte("x")); !errors.Is(err, tcpnet.ErrUnknownNode) {
		t.Fatalf("Send = %v, want ErrUnknownNode", err)
	}
}

func TestSendToDownNodeIsLostNotError(t *testing.T) {
	nw := tcpnet.NewNetwork()
	a := newEndpoint(t, nw)
	b := newEndpoint(t, nw)
	b.Close()
	// Datagram semantics: loss, not failure.
	if err := a.Send(b.ID(), []byte("x")); err != nil {
		t.Fatalf("Send to closed endpoint = %v, want nil (lost)", err)
	}
}

func TestClosedEndpointRejectsOps(t *testing.T) {
	nw := tcpnet.NewNetwork()
	a := newEndpoint(t, nw)
	a.Close()
	a.Close() // idempotent
	if err := a.Send(a.ID(), []byte("x")); !errors.Is(err, tcpnet.ErrClosed) {
		t.Fatalf("Send = %v, want ErrClosed", err)
	}
	if _, err := a.Recv(context.Background()); !errors.Is(err, tcpnet.ErrClosed) {
		t.Fatalf("Recv = %v, want ErrClosed", err)
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	nw := tcpnet.NewNetwork()
	a := newEndpoint(t, nw)
	b := newEndpoint(t, nw)
	huge := make([]byte, 17<<20)
	if err := a.Send(b.ID(), huge); !errors.Is(err, tcpnet.ErrTooLarge) {
		t.Fatalf("Send = %v, want ErrTooLarge", err)
	}
}

func TestManyMessagesInOrderOverOneConnection(t *testing.T) {
	nw := tcpnet.NewNetwork()
	a := newEndpoint(t, nw)
	b := newEndpoint(t, nw)

	const n = 100
	for i := 0; i < n; i++ {
		if err := a.Send(b.ID(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < n; i++ {
		d, err := b.Recv(ctx)
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if d.Payload[0] != byte(i) {
			t.Fatalf("message %d out of order: got %d", i, d.Payload[0])
		}
	}
}

func TestRPCOverTCP(t *testing.T) {
	nw := tcpnet.NewNetwork()
	a := newEndpoint(t, nw)
	b := newEndpoint(t, nw)

	opts := rpc.Options{RetryInterval: 20 * time.Millisecond, CallTimeout: 5 * time.Second}
	pa := rpc.NewPeerOn(a, opts)
	pb := rpc.NewPeerOn(b, opts)
	pb.Handle("echo", func(_ context.Context, from ids.NodeID, body []byte) ([]byte, error) {
		return body, nil
	})
	pa.Start()
	pb.Start()
	t.Cleanup(pa.Stop)
	t.Cleanup(pb.Stop)

	type msg struct {
		Text string `json:"text"`
	}
	var resp msg
	if err := pa.Call(context.Background(), b.ID(), "echo", msg{Text: "tcp"}, &resp); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if resp.Text != "tcp" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestRPCOverTCPConcurrent(t *testing.T) {
	nw := tcpnet.NewNetwork()
	a := newEndpoint(t, nw)
	b := newEndpoint(t, nw)

	opts := rpc.Options{RetryInterval: 20 * time.Millisecond, CallTimeout: 5 * time.Second}
	pa := rpc.NewPeerOn(a, opts)
	pb := rpc.NewPeerOn(b, opts)
	pb.Handle("double", func(_ context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
		var in []int
		if err := json.Unmarshal(body, &in); err != nil {
			return nil, err
		}
		return json.Marshal(append(in, in...))
	})
	pa.Start()
	pb.Start()
	t.Cleanup(pa.Stop)
	t.Cleanup(pb.Stop)

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out []int
			errs <- pa.Call(context.Background(), b.ID(), "double", []int{i}, &out)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent call: %v", err)
		}
	}
}

func TestRPCOverTCPBidirectional(t *testing.T) {
	nw := tcpnet.NewNetwork()
	endpoints := make([]*tcpnet.Endpoint, 3)
	peers := make([]*rpc.Peer, 3)
	opts := rpc.Options{RetryInterval: 20 * time.Millisecond, CallTimeout: 5 * time.Second}
	for i := range endpoints {
		endpoints[i] = newEndpoint(t, nw)
		peers[i] = rpc.NewPeerOn(endpoints[i], opts)
		id := i
		peers[i].Handle("who", func(context.Context, ids.NodeID, []byte) ([]byte, error) {
			return []byte(fmt.Sprintf("%q", fmt.Sprint(id))), nil
		})
		peers[i].Start()
		t.Cleanup(peers[i].Stop)
	}
	for i := range peers {
		for j := range peers {
			if i == j {
				continue
			}
			var got string
			if err := peers[i].Call(context.Background(), endpoints[j].ID(), "who", struct{}{}, &got); err != nil {
				t.Fatalf("%d -> %d: %v", i, j, err)
			}
			if got != fmt.Sprintf("%d", j) {
				t.Fatalf("%d -> %d answered %q", i, j, got)
			}
		}
	}
}

func TestRPCOverTCPSurvivesReceiverRestart(t *testing.T) {
	// The caller's retransmission rides over a receiver that stops
	// and restarts its peer (connections break, new ones are dialed).
	nw := tcpnet.NewNetwork()
	a := newEndpoint(t, nw)
	b := newEndpoint(t, nw)

	opts := rpc.Options{RetryInterval: 20 * time.Millisecond, CallTimeout: 5 * time.Second}
	pa := rpc.NewPeerOn(a, opts)
	pb := rpc.NewPeerOn(b, opts)
	pb.Handle("echo", func(_ context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
		return body, nil
	})
	pa.Start()
	pb.Start()
	t.Cleanup(pa.Stop)
	t.Cleanup(pb.Stop)

	if err := pa.Call(context.Background(), b.ID(), "echo", struct{}{}, nil); err != nil {
		t.Fatal(err)
	}
	pb.Stop()
	pb.Start()
	if err := pa.Call(context.Background(), b.ID(), "echo", struct{}{}, nil); err != nil {
		t.Fatalf("call after receiver restart: %v", err)
	}
}
