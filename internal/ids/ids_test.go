package ids

import (
	"sync"
	"testing"
)

func TestActionIDsAreUniqueAndMonotonic(t *testing.T) {
	prev := NewActionID()
	for i := 0; i < 1000; i++ {
		next := NewActionID()
		if next <= prev {
			t.Fatalf("NewActionID not monotonic: %v then %v", prev, next)
		}
		prev = next
	}
}

func TestIDTypesAreDistinctSpaces(t *testing.T) {
	// Compile-time property really, but keep a runtime smoke check:
	// allocation in one space must not advance another.
	a1 := NewActionID()
	_ = NewObjectID()
	_ = NewNodeID()
	a2 := NewActionID()
	if a2 != a1+1 {
		t.Fatalf("object/node allocation disturbed the action space: %v then %v", a1, a2)
	}
}

func TestConcurrentAllocationIsUnique(t *testing.T) {
	const (
		workers = 8
		perW    = 5000
	)
	var (
		mu   sync.Mutex
		seen = make(map[ActionID]struct{}, workers*perW)
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]ActionID, 0, perW)
			for i := 0; i < perW; i++ {
				local = append(local, NewActionID())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if _, dup := seen[id]; dup {
					t.Errorf("duplicate ActionID %v", id)
					return
				}
				seen[id] = struct{}{}
			}
		}()
	}
	wg.Wait()
}

func TestStringForms(t *testing.T) {
	if got := ActionID(7).String(); got != "a7" {
		t.Fatalf("ActionID(7).String() = %q", got)
	}
	if got := ObjectID(9).String(); got != "o9" {
		t.Fatalf("ObjectID(9).String() = %q", got)
	}
	if got := NodeID(3).String(); got != "n3" {
		t.Fatalf("NodeID(3).String() = %q", got)
	}
}
