// Package ids provides process-unique identifiers for the entities of the
// action runtime: actions, objects and nodes. Identifiers are small
// integers wrapped in distinct types so that an ActionID can never be
// confused with an ObjectID at a call site.
package ids

import (
	"strconv"
	"sync/atomic"
)

// ActionID identifies one action (coloured or conventional). IDs are
// allocated monotonically, so an ActionID doubles as a begin-order
// timestamp in traces.
type ActionID uint64

// ObjectID identifies one managed object. The zero value means "no
// object" and is never allocated.
type ObjectID uint64

// NodeID identifies a simulated node.
type NodeID uint64

var (
	actionCounter atomic.Uint64
	objectCounter atomic.Uint64
	nodeCounter   atomic.Uint64
)

// NewActionID allocates a fresh action identifier.
func NewActionID() ActionID { return ActionID(actionCounter.Add(1)) }

// NewObjectID allocates a fresh object identifier.
func NewObjectID() ObjectID { return ObjectID(objectCounter.Add(1)) }

// NewNodeID allocates a fresh node identifier.
func NewNodeID() NodeID { return NodeID(nodeCounter.Add(1)) }

// String renders identifiers in compact prefixed form (a1, o1, n1).
func (a ActionID) String() string { return "a" + strconv.FormatUint(uint64(a), 10) }
func (o ObjectID) String() string { return "o" + strconv.FormatUint(uint64(o), 10) }
func (n NodeID) String() string   { return "n" + strconv.FormatUint(uint64(n), 10) }
