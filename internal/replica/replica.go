// Package replica manages replicated objects (paper §2: "the
// availability of objects can be increased by replicating them and
// storing them in more than one object store. Replicated objects must be
// managed through appropriate replica-consistency protocols").
//
// A Group names an object resource hosted at several nodes. Updates use
// write-all: every replica is enlisted in the same distributed action,
// so the two-phase commit protocol keeps the copies mutually consistent
// (all replicas apply the update or none does). Reads use read-one: the
// first reachable replica answers, increasing availability under node
// crashes.
package replica

import (
	"context"
	"errors"
	"fmt"

	"mca/internal/dist"
	"mca/internal/ids"
)

// ErrNoReplica is returned by Read when no replica is reachable.
var ErrNoReplica = errors.New("replica: no replica reachable")

// ErrEmptyGroup is returned for operations on a group with no members.
var ErrEmptyGroup = errors.New("replica: empty group")

// Group is a client-side handle to a replicated resource.
type Group struct {
	resource string
	nodes    []ids.NodeID
}

// NewGroup builds a handle for the resource replicated at the given
// nodes.
func NewGroup(resource string, nodes ...ids.NodeID) *Group {
	members := make([]ids.NodeID, len(nodes))
	copy(members, nodes)
	return &Group{resource: resource, nodes: members}
}

// Resource returns the replicated resource name.
func (g *Group) Resource() string { return g.resource }

// Members returns the replica nodes.
func (g *Group) Members() []ids.NodeID {
	out := make([]ids.NodeID, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Write applies op at every replica within the given distributed action
// (write-all). If any replica is unreachable the invocation fails and
// the caller is expected to abort the action: replica consistency over
// availability, the behaviour of the paper's era of strict protocols.
func (g *Group) Write(ctx context.Context, txn *dist.Txn, op string, arg any) error {
	if len(g.nodes) == 0 {
		return ErrEmptyGroup
	}
	for _, n := range g.nodes {
		if err := txn.Invoke(ctx, n, g.resource, op, arg, nil); err != nil {
			return fmt.Errorf("replica %v: %w", n, err)
		}
	}
	return nil
}

// Read runs op at the first reachable replica (read-one), unmarshalling
// the reply into result.
func (g *Group) Read(ctx context.Context, txn *dist.Txn, op string, arg, result any) error {
	if len(g.nodes) == 0 {
		return ErrEmptyGroup
	}
	var lastErr error
	for _, n := range g.nodes {
		err := txn.Invoke(ctx, n, g.resource, op, arg, result)
		if err == nil {
			return nil
		}
		lastErr = err
	}
	return fmt.Errorf("%w: last error: %v", ErrNoReplica, lastErr)
}
