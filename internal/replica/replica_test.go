package replica_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"mca/internal/action"
	"mca/internal/dist"
	"mca/internal/ids"
	"mca/internal/netsim"
	"mca/internal/node"
	"mca/internal/object"
	"mca/internal/replica"
	"mca/internal/rpc"

	"encoding/json"
)

// counterRes is a replicated integer resource.
type counterRes struct {
	mu    sync.Mutex
	nd    *node.Node
	objID ids.ObjectID
	val   *object.Managed[int]
}

func newCounterRes() *counterRes { return &counterRes{objID: ids.NewObjectID()} }

func (c *counterRes) Register(nd *node.Node, _ *rpc.Peer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nd = nd
	c.activateLocked()
}

func (c *counterRes) Recover(context.Context, *node.Node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.activateLocked()
}

func (c *counterRes) activateLocked() {
	if m, err := object.Load[int](c.objID, c.nd.Stable()); err == nil {
		c.val = m
		return
	}
	c.val = object.New(0, object.WithStore(c.nd.Stable()), object.WithID(c.objID))
}

func (c *counterRes) value() *object.Managed[int] {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.val
}

type deltaArg struct {
	Delta int `json:"delta"`
}

type valueResp struct {
	Value int `json:"value"`
}

func (c *counterRes) Invoke(a *action.Action, op string, arg []byte) ([]byte, error) {
	switch op {
	case "add":
		var in deltaArg
		if err := json.Unmarshal(arg, &in); err != nil {
			return nil, err
		}
		if err := c.value().Write(a, func(v *int) error { *v += in.Delta; return nil }); err != nil {
			return nil, err
		}
		return []byte("{}"), nil
	case "get":
		var out valueResp
		if err := c.value().Read(a, func(v int) error { out.Value = v; return nil }); err != nil {
			return nil, err
		}
		return json.Marshal(out)
	default:
		return nil, errors.New("unknown op")
	}
}

type fixture struct {
	net      *netsim.Network
	client   *dist.Manager
	nodes    []*node.Node
	counters []*counterRes
	group    *replica.Group
}

func newFixture(t *testing.T, replicas int) *fixture {
	t.Helper()
	nw := netsim.New(netsim.Config{})
	t.Cleanup(nw.Close)
	opts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 200 * time.Millisecond}

	f := &fixture{net: nw}
	clientNode, err := node.New(nw, node.WithRPCOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(clientNode.Stop)
	f.client = dist.NewManager(clientNode)

	var members []ids.NodeID
	for i := 0; i < replicas; i++ {
		nd, err := node.New(nw, node.WithRPCOptions(opts))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(nd.Stop)
		mgr := dist.NewManager(nd)
		res := newCounterRes()
		nd.Host(res)
		mgr.RegisterResource("counter", res)
		f.nodes = append(f.nodes, nd)
		f.counters = append(f.counters, res)
		members = append(members, nd.ID())
	}
	f.group = replica.NewGroup("counter", members...)
	return f
}

func TestWriteAllUpdatesEveryReplica(t *testing.T) {
	f := newFixture(t, 3)
	ctx := context.Background()

	err := f.client.Run(ctx, func(txn *dist.Txn) error {
		return f.group.Write(ctx, txn, "add", deltaArg{Delta: 5})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range f.counters {
		if got := c.value().Peek(); got != 5 {
			t.Fatalf("replica %d = %d, want 5", i, got)
		}
	}
}

func TestReadOneFallsBackToLiveReplica(t *testing.T) {
	f := newFixture(t, 3)
	ctx := context.Background()

	if err := f.client.Run(ctx, func(txn *dist.Txn) error {
		return f.group.Write(ctx, txn, "add", deltaArg{Delta: 7})
	}); err != nil {
		t.Fatal(err)
	}

	// First replica down: reads must still succeed.
	f.nodes[0].Crash()
	var out valueResp
	err := f.client.Run(ctx, func(txn *dist.Txn) error {
		return f.group.Read(ctx, txn, "get", struct{}{}, &out)
	})
	if err != nil {
		t.Fatalf("read with one replica down: %v", err)
	}
	if out.Value != 7 {
		t.Fatalf("value = %d", out.Value)
	}
}

func TestWriteAllFailsWhenReplicaDown(t *testing.T) {
	// Strict write-all: consistency over availability.
	f := newFixture(t, 3)
	ctx := context.Background()

	f.nodes[1].Crash()
	err := f.client.Run(ctx, func(txn *dist.Txn) error {
		return f.group.Write(ctx, txn, "add", deltaArg{Delta: 3})
	})
	if err == nil {
		t.Fatal("write-all with a crashed replica must fail")
	}
	// No replica applied (atomicity).
	for i, c := range f.counters {
		if i == 1 {
			continue
		}
		if got := c.value().Peek(); got != 0 {
			t.Fatalf("replica %d = %d, want 0", i, got)
		}
	}
}

func TestCrashedReplicaCatchesUpViaRecovery(t *testing.T) {
	// A replica that crashes after prepare learns the commit on
	// restart, restoring mutual consistency.
	f := newFixture(t, 2)
	ctx := context.Background()

	f.client.TestHooks.AfterPrepare = func() {
		f.net.Partition(f.client.Node().ID(), f.nodes[1].ID())
	}
	err := f.client.Run(ctx, func(txn *dist.Txn) error {
		return f.group.Write(ctx, txn, "add", deltaArg{Delta: 9})
	})
	if err != nil {
		t.Fatalf("commit (decision durable): %v", err)
	}
	f.client.TestHooks.AfterPrepare = nil

	f.nodes[1].Crash()
	f.net.Heal(f.client.Node().ID(), f.nodes[1].ID())
	f.nodes[1].Restart()

	if got := f.counters[0].value().Peek(); got != 9 {
		t.Fatalf("replica 0 = %d", got)
	}
	if got := f.counters[1].value().Peek(); got != 9 {
		t.Fatalf("replica 1 = %d after recovery, want 9 (mutual consistency)", got)
	}
}

func TestAbortLeavesReplicasConsistent(t *testing.T) {
	f := newFixture(t, 3)
	ctx := context.Background()

	boom := errors.New("boom")
	err := f.client.Run(ctx, func(txn *dist.Txn) error {
		if err := f.group.Write(ctx, txn, "add", deltaArg{Delta: 4}); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	for i, c := range f.counters {
		if got := c.value().Peek(); got != 0 {
			t.Fatalf("replica %d = %d after abort", i, got)
		}
	}
}

func TestEmptyGroup(t *testing.T) {
	f := newFixture(t, 1)
	ctx := context.Background()
	empty := replica.NewGroup("counter")
	err := f.client.Run(ctx, func(txn *dist.Txn) error {
		return empty.Write(ctx, txn, "add", deltaArg{Delta: 1})
	})
	if !errors.Is(err, replica.ErrEmptyGroup) {
		t.Fatalf("Write = %v, want ErrEmptyGroup", err)
	}
	err = f.client.Run(ctx, func(txn *dist.Txn) error {
		return empty.Read(ctx, txn, "get", struct{}{}, nil)
	})
	if !errors.Is(err, replica.ErrEmptyGroup) {
		t.Fatalf("Read = %v, want ErrEmptyGroup", err)
	}
}

func TestReadFailsWhenAllReplicasDown(t *testing.T) {
	f := newFixture(t, 2)
	ctx := context.Background()
	f.nodes[0].Crash()
	f.nodes[1].Crash()
	err := f.client.Run(ctx, func(txn *dist.Txn) error {
		return f.group.Read(ctx, txn, "get", struct{}{}, &valueResp{})
	})
	if !errors.Is(err, replica.ErrNoReplica) {
		t.Fatalf("Read = %v, want ErrNoReplica", err)
	}
}

func TestGroupAccessors(t *testing.T) {
	g := replica.NewGroup("res", 1, 2, 3)
	if g.Resource() != "res" {
		t.Fatalf("Resource = %q", g.Resource())
	}
	members := g.Members()
	if len(members) != 3 {
		t.Fatalf("Members = %v", members)
	}
	members[0] = 99 // must not alias internal state
	if g.Members()[0] == 99 {
		t.Fatal("Members aliases internal slice")
	}
}
