package node_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"mca/internal/action"
	"mca/internal/netsim"
	"mca/internal/node"
)

func TestDebugEndpointServesMetrics(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	n, err := node.New(net, node.WithDebugAddr("127.0.0.1:0"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer n.Stop()

	addr := n.DebugAddr()
	if addr == "" {
		t.Fatal("DebugAddr empty with WithDebugAddr set")
	}

	// Generate some runtime traffic so counters are non-zero.
	if err := n.Runtime().Run(func(*action.Action) error { return nil }); err != nil {
		t.Fatalf("Run: %v", err)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if !strings.Contains(text, "# TYPE mca_action_begins_total counter") {
		t.Fatalf("prometheus output missing action metrics:\n%.1000s", text)
	}
	if !strings.Contains(text, "mca_lock_block_ns") {
		t.Fatalf("prometheus output missing lock metrics:\n%.1000s", text)
	}

	resp, err = http.Get("http://" + addr + "/metrics?format=json")
	if err != nil {
		t.Fatalf("GET /metrics?format=json: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var decoded map[string]any
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatalf("JSON endpoint returned invalid JSON: %v", err)
	}
}

func TestNoDebugServerByDefault(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	n, err := node.New(net)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer n.Stop()
	if addr := n.DebugAddr(); addr != "" {
		t.Fatalf("DebugAddr = %q, want empty", addr)
	}
}
