package node_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"mca/internal/action"
	"mca/internal/flightrec"
	"mca/internal/netsim"
	"mca/internal/node"
	"mca/internal/trace"
)

func TestDebugEndpointServesMetrics(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	n, err := node.New(net, node.WithDebugAddr("127.0.0.1:0"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer n.Stop()

	addr := n.DebugAddr()
	if addr == "" {
		t.Fatal("DebugAddr empty with WithDebugAddr set")
	}

	// Generate some runtime traffic so counters are non-zero.
	if err := n.Runtime().Run(func(*action.Action) error { return nil }); err != nil {
		t.Fatalf("Run: %v", err)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if !strings.Contains(text, "# TYPE mca_action_begins_total counter") {
		t.Fatalf("prometheus output missing action metrics:\n%.1000s", text)
	}
	if !strings.Contains(text, "mca_lock_block_ns") {
		t.Fatalf("prometheus output missing lock metrics:\n%.1000s", text)
	}

	resp, err = http.Get("http://" + addr + "/metrics?format=json")
	if err != nil {
		t.Fatalf("GET /metrics?format=json: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var decoded map[string]any
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatalf("JSON endpoint returned invalid JSON: %v", err)
	}
}

func TestNoDebugServerByDefault(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	n, err := node.New(net)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer n.Stop()
	if addr := n.DebugAddr(); addr != "" {
		t.Fatalf("DebugAddr = %q, want empty", addr)
	}
}

// getJSON fetches the URL and decodes the body as JSON into out.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d:\n%s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("GET %s: invalid JSON: %v\n%s", url, err, body)
	}
}

func TestHealthzReportsNodeState(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	n, err := node.New(net, node.WithDebugAddr("127.0.0.1:0"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer n.Stop()
	base := "http://" + n.DebugAddr()

	var health struct {
		Node  string `json:"node"`
		State string `json:"state"`
	}
	getJSON(t, base+"/healthz", &health)
	if health.Node != n.ID().String() || health.State != "up" {
		t.Fatalf("healthz = %+v, want node=%s state=up", health, n.ID())
	}

	var vars map[string]any
	getJSON(t, base+"/debug/vars", &vars)
	if len(vars) == 0 {
		t.Fatal("/debug/vars returned an empty registry")
	}

	// Crash is part of the failure model; the debug endpoint is not.
	// It must keep serving and report the crashed state.
	n.Crash()
	getJSON(t, base+"/healthz", &health)
	if health.State != "crashed" {
		t.Fatalf("healthz after Crash = %+v, want state=crashed", health)
	}

	n.Restart()
	getJSON(t, base+"/healthz", &health)
	if health.State != "up" {
		t.Fatalf("healthz after Restart = %+v, want state=up", health)
	}
}

func TestDebugFlightRecorderAndTraceEndpoints(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	rec := trace.NewRecorder()
	n, err := node.New(net, node.WithDebugAddr("127.0.0.1:0"), node.WithTracer(rec))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer n.Stop()
	base := "http://" + n.DebugAddr()

	if err := n.Runtime().Run(func(*action.Action) error { return nil }); err != nil {
		t.Fatalf("Run: %v", err)
	}
	flightrec.Record(flightrec.Event{Kind: flightrec.KindRPCServe, Node: uint64(n.ID()), A: 1})

	resp, err := http.Get(base + "/debug/flightrecorder")
	if err != nil {
		t.Fatalf("GET /debug/flightrecorder: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"kind":`) {
		t.Fatalf("flight recorder dump has no events:\n%.500s", body)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("flightrecorder line %q not JSON: %v", line, err)
		}
	}

	resp, err = http.Get(base + "/debug/trace")
	if err != nil {
		t.Fatalf("GET /debug/trace: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	spans, err := trace.ReadSpans(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("/debug/trace is not a span stream: %v\n%s", err, body)
	}
	if len(spans) == 0 {
		t.Fatal("/debug/trace exported no spans")
	}
	if spans[0].Node != n.ID() {
		t.Fatalf("exported span node = %v, want %v", spans[0].Node, n.ID())
	}
}

func TestDebugTraceWithoutTracerIs404(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	n, err := node.New(net, node.WithDebugAddr("127.0.0.1:0"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer n.Stop()
	resp, err := http.Get("http://" + n.DebugAddr() + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/trace without tracer: status %d, want 404", resp.StatusCode)
	}
}

func TestStopClosesDebugEndpoint(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	n, err := node.New(net, node.WithDebugAddr("127.0.0.1:0"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	addr := n.DebugAddr()
	n.Stop()
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("debug endpoint still serving after Stop")
	}
}
