package node

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"mca/internal/flightrec"
	"mca/internal/metrics"
)

// debugServer is the node's opt-in observability endpoint: an HTTP
// listener serving the process-global metrics registry on /metrics
// (Prometheus text; ?format=json for expvar-style JSON), a liveness
// probe on /healthz, an expvar-style JSON alias on /debug/vars, the
// flight recorder's recent events on /debug/flightrecorder (JSONL) and
// the node's trace spans on /debug/trace (JSONL, when the node has a
// tracer), and the Go profiler under /debug/pprof/ (a custom mux, so
// the handlers are wired explicitly rather than via the package's
// DefaultServeMux side effect). It is plain host infrastructure,
// deliberately outside the
// simulated failure model: Crash does not stop it — a crashed node
// still reports its state, which is the point of a health probe —
// only Stop does.
type debugServer struct {
	ln  net.Listener
	srv *http.Server
}

func startDebugServer(addr string, n *Node) (*debugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	// Every scrape of this endpoint should carry runtime health too
	// (goroutines, heap, GC pauses, scheduler latency).
	metrics.RegisterRuntimeDefault()
	mux.Handle("/metrics", metrics.Handler(metrics.Default()))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		state := "up"
		if n.Crashed() {
			state = "crashed"
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Node  string `json:"node"`
			State string `json:"state"`
		}{n.ID().String(), state})
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		metrics.WriteJSON(w, metrics.Default())
	})
	mux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		_ = flightrec.WriteJSONL(w, flightrec.Snapshot())
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		rec := n.Tracer()
		if rec == nil {
			http.Error(w, "node has no tracer (node.WithTracer)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/jsonl")
		_ = rec.WriteSpans(w)
	})
	d := &debugServer{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	//mcalint:ignore goleak Serve returns when close() calls srv.Close
	go d.srv.Serve(ln)
	return d, nil
}

func (d *debugServer) close() {
	if d == nil {
		return
	}
	d.srv.Close()
}

type debugAddrOption string

func (o debugAddrOption) apply(opts *nodeOptions) { opts.debugAddr = string(o) }

// WithDebugAddr serves the debug endpoint on the given TCP address
// ("127.0.0.1:0" picks a free port; see Node.DebugAddr). The metrics
// and flight-recorder routes expose process-global state — counters
// and events from every layer, not only this node's — while /healthz
// and /debug/trace are node-scoped.
func WithDebugAddr(addr string) Option { return debugAddrOption(addr) }

// DebugAddr returns the listen address of the node's debug endpoint,
// or "" when WithDebugAddr was not used.
func (n *Node) DebugAddr() string {
	if n.debug == nil {
		return ""
	}
	return n.debug.ln.Addr().String()
}
