package node

import (
	"net"
	"net/http"
	"time"

	"mca/internal/metrics"
)

// debugServer is the node's opt-in observability endpoint: an HTTP
// listener serving the process-global metrics registry on /metrics
// (Prometheus text; ?format=json for expvar-style JSON). It is plain
// host infrastructure, deliberately outside the simulated failure
// model: Crash does not stop it, only Stop does.
type debugServer struct {
	ln  net.Listener
	srv *http.Server
}

func startDebugServer(addr string) (*debugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(metrics.Default()))
	d := &debugServer{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	//mcalint:ignore goleak Serve returns when close() calls srv.Close
	go d.srv.Serve(ln)
	return d, nil
}

func (d *debugServer) close() {
	if d == nil {
		return
	}
	d.srv.Close()
}

type debugAddrOption string

func (o debugAddrOption) apply(opts *nodeOptions) { opts.debugAddr = string(o) }

// WithDebugAddr serves the metrics endpoint on the given TCP address
// ("127.0.0.1:0" picks a free port; see Node.DebugAddr). The endpoint
// exposes the process-global registry: counters from every layer, not
// only this node's.
func WithDebugAddr(addr string) Option { return debugAddrOption(addr) }

// DebugAddr returns the listen address of the node's metrics endpoint,
// or "" when WithDebugAddr was not used.
func (n *Node) DebugAddr() string {
	if n.debug == nil {
		return ""
	}
	return n.debug.ln.Addr().String()
}
