// Package node models the workstations of paper §2: fail-silent nodes
// with stable and volatile storage, attached to the simulated network.
// A node hosts an action runtime, an RPC peer and application services;
// Crash makes it fail silently (volatile state lost, stable state kept),
// Restart repairs stable storage and restarts services so higher layers
// (internal/dist) can run their recovery protocols.
package node

import (
	"context"
	"fmt"
	"sync"

	"mca/internal/action"
	"mca/internal/clock"
	"mca/internal/flightrec"
	"mca/internal/ids"
	"mca/internal/netsim"
	"mca/internal/rpc"
	"mca/internal/store"
	"mca/internal/trace"
)

// Service is an application component hosted on a node. Register hooks
// the service's RPC handlers on the peer; it runs once at startup and
// again after every restart (handlers are volatile). Recover runs after
// the node restarts, before the node is considered up, so services can
// resolve in-doubt state from the stable store; ctx is the node's
// lifetime context (see Node.Context), so recovery work started in the
// background dies with the node instead of outliving it.
type Service interface {
	Register(n *Node, p *rpc.Peer)
	Recover(ctx context.Context, n *Node)
}

// Endpoint is the transport attachment a node runs on: the datagram
// surface the RPC peer uses, plus the failure-model hooks (Crash makes
// the endpoint fail-silent, Restart brings it back empty). Both the
// simulated LAN (netsim, via New) and real TCP (tcpnet, via NewOn)
// satisfy it, so the same node — and everything hosted on it, 2PC
// included — runs over either.
type Endpoint interface {
	rpc.Transport
	Crash()
	Restart()
	Close()
}

// Node is one simulated workstation.
type Node struct {
	endpoint Endpoint
	stable   *store.Stable
	rpcOpts  rpc.Options
	// clk is the node's time source, handed down to the action
	// runtime, lock manager, RPC peer, WAL and hosted services so a
	// whole node runs on one (possibly virtual) timeline.
	clk clock.Clock

	mu       sync.Mutex
	peer     *rpc.Peer
	runtime  *action.Runtime
	volatile *store.Volatile
	services []Service
	crashed  bool
	// life is cancelled when the node crashes or stops, so goroutines
	// working on the node's behalf (recovery retry loops, in-flight
	// calls) terminate with it. Restart installs a fresh context.
	life     context.Context
	stopLife context.CancelFunc
	// crashes counts Crash calls, exposed for experiment reporting.
	crashes int
	// debug is the optional metrics HTTP endpoint (WithDebugAddr). It
	// lives outside the failure model: Crash leaves it serving, Stop
	// closes it.
	debug *debugServer
	// tracer is the optional distributed-trace recorder (WithTracer).
	// Like the debug endpoint it lives outside the failure model, so
	// traces recorded before a crash survive for export; the runtime
	// observer and RPC hookup are re-wired on Restart.
	tracer *trace.Recorder
}

// Option configures a node.
type Option interface{ apply(*nodeOptions) }

type nodeOptions struct {
	rpcOpts    rpc.Options
	rpcOptsSet bool
	debugAddr  string
	tracer     *trace.Recorder
	stableDir  string
	clk        clock.Clock
}

type clockOption struct{ c clock.Clock }

func (o clockOption) apply(opts *nodeOptions) { opts.clk = o.c }

// WithClock substitutes the node's time source. Everything the node
// hosts — action runtime, lock manager, RPC retry timers, WAL
// group-commit window, services registered on it — inherits this
// clock, so a clock.Fake puts the node's entire timeline under test
// control. The default is clock.Real().
func WithClock(c clock.Clock) Option { return clockOption{c} }

type stableDirOption string

func (o stableDirOption) apply(opts *nodeOptions) { opts.stableDir = string(o) }

// WithStableDir backs the node's stable store with a FileStore rooted
// at dir: object installs, the batch journal and the intention log
// (WAL) are really on disk, and Restart recovers from there.
func WithStableDir(dir string) Option { return stableDirOption(dir) }

type tracerOption struct{ rec *trace.Recorder }

func (o tracerOption) apply(opts *nodeOptions) { opts.tracer = o.rec }

// WithTracer installs a distributed-trace recorder: the action runtime
// reports begin/commit/abort events to it, the RPC peer records
// client/server spans and propagates trace contexts on the wire, and
// hosted services (dist.Manager) pick it up for round spans. The
// recorder survives crashes — export its spans any time with
// Recorder.WriteSpans.
func WithTracer(rec *trace.Recorder) Option { return tracerOption{rec} }

type rpcOptsOption rpc.Options

func (o rpcOptsOption) apply(opts *nodeOptions) {
	opts.rpcOpts = rpc.Options(o)
	opts.rpcOptsSet = true
}

// WithRPCOptions tunes the node's RPC behaviour.
func WithRPCOptions(o rpc.Options) Option { return rpcOptsOption(o) }

// simEndpoint adapts a netsim endpoint to the node's Endpoint surface
// (rpc.Datagram on Recv, plus the failure hooks netsim already has).
type simEndpoint struct {
	ep *netsim.Endpoint
}

var _ Endpoint = simEndpoint{}

func (s simEndpoint) ID() ids.NodeID { return s.ep.ID() }

func (s simEndpoint) Send(to ids.NodeID, payload []byte) error {
	return s.ep.Send(to, payload)
}

func (s simEndpoint) Recv(ctx context.Context) (rpc.Datagram, error) {
	m, err := s.ep.Recv(ctx)
	if err != nil {
		return rpc.Datagram{}, err
	}
	return rpc.Datagram{From: m.From, To: m.To, Payload: m.Payload}, nil
}

func (s simEndpoint) Crash()   { s.ep.Crash() }
func (s simEndpoint) Restart() { s.ep.Restart() }
func (s simEndpoint) Close()   { s.ep.Close() }

// New attaches a fresh node to the simulated network and starts it.
func New(net *netsim.Network, opts ...Option) (*Node, error) {
	ep, err := net.NewEndpoint()
	if err != nil {
		return nil, err
	}
	return NewOn(simEndpoint{ep: ep}, opts...)
}

// NewOn starts a node over an already-attached transport endpoint —
// the way to host a node (and its services, 2PC included) on real TCP:
//
//	ep, _ := tcpNet.Listen("127.0.0.1:0")
//	n, _ := node.NewOn(ep, node.WithStableDir(dir))
func NewOn(ep Endpoint, opts ...Option) (*Node, error) {
	var no nodeOptions
	for _, opt := range opts {
		opt.apply(&no)
	}
	if no.clk == nil {
		no.clk = clock.Real()
	}
	if no.rpcOpts.Clock == nil {
		no.rpcOpts.Clock = no.clk
	}
	stable := store.NewStable()
	var err error
	if no.stableDir != "" {
		stable, err = store.NewStableAt(no.stableDir)
		if err != nil {
			ep.Close()
			return nil, err
		}
	}
	n := &Node{
		endpoint: ep,
		stable:   stable,
		rpcOpts:  no.rpcOpts,
		clk:      no.clk,
		volatile: store.NewVolatile(),
		tracer:   no.tracer,
	}
	stable.WAL().SetNodeID(uint64(ep.ID()))
	stable.WAL().SetClock(no.clk)
	if n.tracer != nil {
		// Export every WAL group-commit flush as an untraced root span
		// (a flush serves records from many transactions, so it belongs
		// to no single distributed trace), showing the amortised force
		// the commit path now rides on.
		rec := n.tracer
		nodeID := ep.ID()
		clk := n.clk
		stable.WAL().SetFlushObserver(func(fi store.FlushInfo) {
			outcome := trace.OutcomeOK
			if fi.Err != nil {
				outcome = trace.OutcomeError
			}
			end := clk.Now()
			rec.AddSpan(trace.Span{
				Kind:    "wal.flush",
				Node:    nodeID,
				Label:   fmt.Sprintf("wal.flush records=%d", fi.Records),
				Outcome: outcome,
				Begin:   end.Add(-fi.Duration),
				End:     end,
			})
		})
	}
	if n.tracer != nil {
		n.tracer.SetNode(ep.ID())
		n.runtime = action.NewRuntime(action.WithClock(n.clk), action.WithObserver(n.tracer.Observe))
	} else {
		n.runtime = action.NewRuntime(action.WithClock(n.clk))
	}
	n.life, n.stopLife = context.WithCancel(context.Background())
	n.peer = rpc.NewPeerOn(ep, n.rpcOpts)
	n.peer.SetTracer(n.tracer)
	if no.debugAddr != "" {
		d, err := startDebugServer(no.debugAddr, n)
		if err != nil {
			ep.Close()
			return nil, err
		}
		n.debug = d
	}
	n.peer.Start()
	return n, nil
}

// Context returns the node's lifetime context: cancelled when the node
// crashes or stops, replaced by Restart. Goroutines doing work on the
// node's behalf should watch it so they die with the node.
func (n *Node) Context() context.Context {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.life
}

// ID returns the node identifier.
func (n *Node) ID() ids.NodeID { return n.endpoint.ID() }

// Stable returns the node's stable store (survives crashes).
func (n *Node) Stable() *store.Stable { return n.stable }

// Volatile returns the node's volatile store (lost on crash).
func (n *Node) Volatile() *store.Volatile {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.volatile
}

// Runtime returns the node's action runtime. After a crash/restart it is
// a fresh runtime: in-flight actions and their locks died with the
// volatile memory.
func (n *Node) Runtime() *action.Runtime {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.runtime
}

// Tracer returns the node's distributed-trace recorder, or nil when
// the node was built without WithTracer.
func (n *Node) Tracer() *trace.Recorder { return n.tracer }

// Clock returns the node's time source (WithClock; clock.Real() by
// default). Hosted services use it for their own timers so the whole
// node shares one timeline.
func (n *Node) Clock() clock.Clock { return n.clk }

// Peer returns the node's RPC peer.
func (n *Node) Peer() *rpc.Peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.peer
}

// Host installs a service on the node and registers its handlers.
func (n *Node) Host(s Service) {
	n.mu.Lock()
	n.services = append(n.services, s)
	peer := n.peer
	n.mu.Unlock()
	s.Register(n, peer)
}

// Crash makes the node fail silently: the RPC engine stops, queued and
// future messages are dropped, volatile storage is cleared, the action
// runtime (locks, in-flight actions) is abandoned, and stable storage
// rejects operations until Restart. Crashing a crashed node is a no-op.
func (n *Node) Crash() {
	n.mu.Lock()
	if n.crashed {
		n.mu.Unlock()
		return
	}
	n.crashed = true
	n.crashes++
	peer := n.peer
	stopLife := n.stopLife
	n.mu.Unlock()

	stopLife()
	peer.Stop()
	n.endpoint.Crash()
	n.volatile.Crash()
	n.stable.Crash()
	flightrec.Record(flightrec.Event{Kind: flightrec.KindCrash, Node: uint64(n.ID())})
	flightrec.AutoDump("crash")
}

// Restart repairs the node: stable storage recovers (completing any
// journalled batch), volatile storage and the action runtime start
// empty, services re-register their handlers and run their recovery
// hooks.
func (n *Node) Restart() {
	n.mu.Lock()
	if !n.crashed {
		n.mu.Unlock()
		return
	}
	n.crashed = false
	n.stable.Recover()
	n.endpoint.Restart()
	n.volatile = store.NewVolatile()
	if n.tracer != nil {
		n.runtime = action.NewRuntime(action.WithClock(n.clk), action.WithObserver(n.tracer.Observe))
	} else {
		n.runtime = action.NewRuntime(action.WithClock(n.clk))
	}
	n.peer = rpc.NewPeerOn(n.endpoint, n.rpcOpts)
	n.peer.SetTracer(n.tracer)
	n.life, n.stopLife = context.WithCancel(context.Background())
	services := make([]Service, len(n.services))
	copy(services, n.services)
	peer := n.peer
	life := n.life
	n.mu.Unlock()

	for _, s := range services {
		s.Register(n, peer)
	}
	peer.Start()
	for _, s := range services {
		s.Recover(life, n)
	}
}

// Crashed reports whether the node is currently crashed.
func (n *Node) Crashed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed
}

// Crashes returns how many times the node has crashed.
func (n *Node) Crashes() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashes
}

// Stop shuts the node down permanently (test cleanup).
func (n *Node) Stop() {
	n.mu.Lock()
	peer := n.peer
	stopLife := n.stopLife
	n.mu.Unlock()
	stopLife()
	peer.Stop()
	n.endpoint.Close()
	n.debug.close()
}
