package node_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"mca/internal/ids"
	"mca/internal/netsim"
	"mca/internal/node"
	"mca/internal/rpc"
	"mca/internal/store"
)

// probe is a service counting Register/Recover invocations and serving a
// ping method.
type probe struct {
	mu        sync.Mutex
	registers int
	recovers  int
}

func (p *probe) Register(_ *node.Node, peer *rpc.Peer) {
	p.mu.Lock()
	p.registers++
	p.mu.Unlock()
	peer.Handle("ping", func(context.Context, ids.NodeID, []byte) ([]byte, error) {
		return []byte(`{"ok":true}`), nil
	})
}

func (p *probe) Recover(context.Context, *node.Node) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.recovers++
}

func (p *probe) counts() (int, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.registers, p.recovers
}

func newTestNode(t *testing.T, nw *netsim.Network) *node.Node {
	t.Helper()
	nd, err := node.New(nw, node.WithRPCOptions(rpc.Options{
		RetryInterval: 5 * time.Millisecond,
		CallTimeout:   200 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nd.Stop)
	return nd
}

func TestServiceLifecycleAcrossCrash(t *testing.T) {
	nw := netsim.New(netsim.Config{})
	t.Cleanup(nw.Close)
	a := newTestNode(t, nw)
	b := newTestNode(t, nw)

	p := &probe{}
	b.Host(p)
	if reg, rec := p.counts(); reg != 1 || rec != 0 {
		t.Fatalf("after Host: registers=%d recovers=%d", reg, rec)
	}

	if err := a.Peer().Call(context.Background(), b.ID(), "ping", struct{}{}, nil); err != nil {
		t.Fatalf("ping: %v", err)
	}

	b.Crash()
	if !b.Crashed() {
		t.Fatal("Crashed() = false after Crash")
	}
	if err := a.Peer().Call(context.Background(), b.ID(), "ping", struct{}{}, nil); !errors.Is(err, rpc.ErrTimeout) {
		t.Fatalf("ping to crashed node = %v, want ErrTimeout", err)
	}

	b.Restart()
	if reg, rec := p.counts(); reg != 2 || rec != 1 {
		t.Fatalf("after Restart: registers=%d recovers=%d", reg, rec)
	}
	if err := a.Peer().Call(context.Background(), b.ID(), "ping", struct{}{}, nil); err != nil {
		t.Fatalf("ping after restart: %v", err)
	}
}

func TestCrashSemanticsOfStores(t *testing.T) {
	nw := netsim.New(netsim.Config{})
	t.Cleanup(nw.Close)
	nd := newTestNode(t, nw)

	oid := ids.NewObjectID()
	if err := nd.Stable().Write(oid, store.State("durable")); err != nil {
		t.Fatal(err)
	}
	if err := nd.Volatile().Write(oid, store.State("ram")); err != nil {
		t.Fatal(err)
	}
	rtBefore := nd.Runtime()

	nd.Crash()
	if _, err := nd.Stable().Read(oid); !errors.Is(err, store.ErrCrashed) {
		t.Fatalf("stable read while crashed = %v", err)
	}
	nd.Restart()

	got, err := nd.Stable().Read(oid)
	if err != nil || string(got) != "durable" {
		t.Fatalf("stable after restart = %q, %v", got, err)
	}
	if _, err := nd.Volatile().Read(oid); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("volatile after restart = %v, want ErrNotFound", err)
	}
	if nd.Runtime() == rtBefore {
		t.Fatal("runtime must be fresh after restart (locks died with RAM)")
	}
}

func TestCrashIdempotent(t *testing.T) {
	nw := netsim.New(netsim.Config{})
	t.Cleanup(nw.Close)
	nd := newTestNode(t, nw)

	nd.Crash()
	nd.Crash()
	if got := nd.Crashes(); got != 1 {
		t.Fatalf("Crashes = %d, want 1", got)
	}
	nd.Restart()
	nd.Restart()
	if nd.Crashed() {
		t.Fatal("node must be up")
	}
	nd.Crash()
	if got := nd.Crashes(); got != 2 {
		t.Fatalf("Crashes = %d, want 2", got)
	}
}
