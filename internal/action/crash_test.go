package action_test

import (
	"errors"
	"testing"

	"mca/internal/action"
	"mca/internal/colour"
	"mca/internal/store"
)

// These tests pin down the all-or-nothing property of a top-level
// commit's permanence flush across node crashes, end to end through the
// journal: a crash before the journal force loses the whole write set
// (the action is effectively aborted); a crash after it yields the whole
// write set on recovery (effectively committed). Either way the stable
// state is never a partial mixture.
//
// Stable.Crash models a node crash: in-memory objects die with it and
// are re-activated from the store afterwards, which is how the runtime
// is used by internal/node.

func crashCommitFixture(t *testing.T, point store.CrashPoint) (st *store.Stable, regs []*reg) {
	t.Helper()
	rt := action.NewRuntime()
	st = store.NewStable()
	regs = []*reg{newReg("a0", st), newReg("b0", st), newReg("c0", st)}

	// Install a committed baseline.
	a, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range regs {
		r.write(t, a, colour.None, r.get()+"-base")
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}

	// Second action crashes while flushing.
	b, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range regs {
		r.write(t, b, colour.None, "NEW")
	}
	st.CrashDuringNextBatch(point)
	if err := b.Commit(); !errors.Is(err, action.ErrPermanence) {
		t.Fatalf("Commit during crash = %v, want ErrPermanence", err)
	}
	return st, regs
}

func TestCrashBeforeJournalLosesWholeWriteSet(t *testing.T) {
	st, regs := crashCommitFixture(t, store.CrashBeforeJournal)
	if st.Recover() {
		t.Fatal("nothing must be repaired: the journal was never forced")
	}
	for _, r := range regs {
		got, err := st.Read(r.id)
		if err != nil {
			t.Fatalf("read %v: %v", r.id, err)
		}
		if string(got) != r.get() {
			t.Fatalf("stable state %q, want restored baseline %q", got, r.get())
		}
	}
}

func TestCrashAfterJournalYieldsWholeWriteSetOnRecovery(t *testing.T) {
	st, regs := crashCommitFixture(t, store.CrashAfterJournal)
	if !st.Recover() {
		t.Fatal("recovery must replay the journalled batch")
	}
	for _, r := range regs {
		got, err := st.Read(r.id)
		if err != nil {
			t.Fatalf("read %v: %v", r.id, err)
		}
		if string(got) != "NEW" {
			t.Fatalf("stable state = %q, want the full write set after journal replay", got)
		}
	}
}

func TestCrashMidApplyRepairedToWholeWriteSet(t *testing.T) {
	st, regs := crashCommitFixture(t, store.CrashMidApply)
	if !st.Recover() {
		t.Fatal("recovery must complete the half-applied batch")
	}
	for _, r := range regs {
		got, err := st.Read(r.id)
		if err != nil {
			t.Fatalf("read %v: %v", r.id, err)
		}
		if string(got) != "NEW" {
			t.Fatalf("stable state = %q: batch left partial after recovery", got)
		}
	}
}

func TestColouredFlushAtomicPerColour(t *testing.T) {
	// Fig 10 pattern with a crash at the red flush: the red write set
	// is all-or-nothing independent of blue.
	rt := action.NewRuntime()
	st := store.NewStable()
	red, blue := colour.Fresh(), colour.Fresh()
	r1 := newReg("r1", st)
	r2 := newReg("r2", st)

	a, err := rt.Begin(action.WithColours(blue))
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.Begin(action.WithColours(red, blue))
	if err != nil {
		t.Fatal(err)
	}
	r1.write(t, b, red, "R1")
	r2.write(t, b, red, "R2")

	st.CrashDuringNextBatch(store.CrashAfterJournal)
	if err := b.Commit(); !errors.Is(err, action.ErrPermanence) {
		t.Fatalf("Commit = %v, want ErrPermanence", err)
	}
	_ = a.Abort()

	if !st.Recover() {
		t.Fatal("journal replay expected")
	}
	for _, r := range []*reg{r1, r2} {
		got, err := st.Read(r.id)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if string(got) != "R1" && string(got) != "R2" {
			t.Fatalf("red flush incomplete after recovery: %q", got)
		}
	}
}
