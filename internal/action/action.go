// Package action implements the multi-coloured action runtime of paper §5.
//
// An Action is the unit of work. Every action carries a static set of
// colours (paper §5.1); conventional atomic actions are the single-colour
// special case. Actions nest: children inherit their parent's colours by
// default, and may be given different colour sets to express the paper's
// serializing, glued and independent structures (package structures does
// so automatically).
//
// The runtime provides the three coloured-action properties:
//
//   - failure atomicity per colour set: an aborting action undoes every
//     state change it made (before-image recovery records), and recursively
//     aborts active descendants whose colour sets intersect its own;
//     colour-disjoint descendants — independent actions — survive;
//   - serializability: two-phase coloured locking through internal/lock;
//     locks are held to completion and inherited per colour;
//   - permanence of effect per colour: when an outermost action of colour a
//     commits (no ancestor possesses a), the write set of colour a is
//     flushed atomically to the objects' stable stores.
package action

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mca/internal/clock"
	"mca/internal/colour"
	"mca/internal/ids"
	"mca/internal/lock"
	"mca/internal/store"
)

// Status is the lifecycle state of an action.
type Status int

// Action lifecycle states.
const (
	Active Status = iota + 1
	Committed
	Aborted
)

// String renders the status for logs and traces.
func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Errors reported by the runtime.
var (
	// ErrNotActive is returned by operations on a completed action.
	ErrNotActive = errors.New("action: not active")
	// ErrActiveChildren is returned by Commit when a nested action
	// sharing a colour is still running; the programmer must complete
	// children first (independent, colour-disjoint children are
	// exempt).
	ErrActiveChildren = errors.New("action: active non-independent children")
	// ErrAborted is returned by lock and write operations when the
	// action was aborted (possibly by a cascading parent abort) while
	// the operation was in flight.
	ErrAborted = errors.New("action: aborted")
	// ErrColourNotHeld is returned when a lock or write names a colour
	// the action does not possess (paper §5.2: "a coloured action may
	// only use the colours which it possesses").
	ErrColourNotHeld = errors.New("action: colour not possessed")
	// ErrPermanence is returned by Commit when flushing a colour's
	// write set to stable storage failed; the action is aborted.
	ErrPermanence = errors.New("action: permanence failure")
)

// Persister is the durable sink for the write set of an outermost-colour
// commit. *store.Stable and *store.FileStore implement it.
type Persister interface {
	ApplyBatch(store.Batch) error
}

var (
	_ Persister = (*store.Stable)(nil)
	_ Persister = (*store.FileStore)(nil)
)

// Recoverable is a managed object as seen by the runtime: it can capture
// and restore its state (before-image recovery) and names the stable
// store responsible for its permanence (nil for volatile-only objects).
type Recoverable interface {
	ObjectID() ids.ObjectID
	CaptureState() (store.State, error)
	RestoreState(store.State) error
	Persister() Persister
}

// undoRecord is one before-image: restoring it undoes every write this
// action performed on the object. An action holds at most one record per
// object, because the write-colour rule forbids one action writing the
// same object under two colours.
type undoRecord struct {
	res    Recoverable
	colour colour.Colour
	before store.State
	// created records that the object did not exist before this
	// action wrote it (before-image is "absent").
	created bool
}

// EventKind classifies runtime events for observers.
type EventKind int

// Event kinds.
const (
	EventBegin EventKind = iota + 1
	EventCommit
	EventAbort
)

// String renders the event kind for logs and traces.
func (k EventKind) String() string {
	switch k {
	case EventBegin:
		return "begin"
	case EventCommit:
		return "commit"
	case EventAbort:
		return "abort"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one lifecycle notification delivered to an observer.
type Event struct {
	Kind    EventKind
	Time    time.Time
	Action  ids.ActionID
	Parent  ids.ActionID // zero for top-level actions
	Colours colour.Set
}

// Observer receives runtime events. Observers run synchronously on the
// acting goroutine and must be fast and non-blocking; they must not call
// back into the runtime.
type Observer func(Event)

// Runtime owns the action tree and the coloured lock manager.
type Runtime struct {
	locks    *lock.Manager
	observer Observer
	clk      clock.Clock

	mu      sync.Mutex
	actions map[ids.ActionID]*Action
}

// Option configures a Runtime.
type Option interface{ apply(*runtimeOptions) }

type runtimeOptions struct {
	maxLockWait time.Duration
	lockShards  int
	observer    Observer
	clk         clock.Clock
}

type maxLockWaitOption time.Duration

func (o maxLockWaitOption) apply(opts *runtimeOptions) { opts.maxLockWait = time.Duration(o) }

// WithMaxLockWait bounds lock waits; see lock.WithMaxWait.
func WithMaxLockWait(d time.Duration) Option { return maxLockWaitOption(d) }

type lockShardsOption int

func (o lockShardsOption) apply(opts *runtimeOptions) { opts.lockShards = int(o) }

// WithLockShards fixes the striped lock table's shard count (rounded up
// to a power of two); see lock.WithShards. The default scales with
// GOMAXPROCS.
func WithLockShards(n int) Option { return lockShardsOption(n) }

type observerOption struct{ fn Observer }

func (o observerOption) apply(opts *runtimeOptions) { opts.observer = o.fn }

// WithObserver installs an event observer on the runtime (tracing,
// timeline rendering — see internal/trace).
func WithObserver(fn Observer) Option { return observerOption{fn: fn} }

type clockOption struct{ c clock.Clock }

func (o clockOption) apply(opts *runtimeOptions) { opts.clk = o.c }

// WithClock substitutes the runtime's time source (observer event
// timestamps, lock-wait timers). The default is clock.Real();
// deterministic simulations install a clock.Fake.
func WithClock(c clock.Clock) Option { return clockOption{c} }

// NewRuntime builds an empty runtime.
func NewRuntime(opts ...Option) *Runtime {
	var o runtimeOptions
	for _, opt := range opts {
		opt.apply(&o)
	}
	if o.clk == nil {
		o.clk = clock.Real()
	}
	r := &Runtime{actions: make(map[ids.ActionID]*Action), observer: o.observer, clk: o.clk}
	lockOpts := []lock.Option{lock.WithClock(o.clk)}
	if o.maxLockWait > 0 {
		lockOpts = append(lockOpts, lock.WithMaxWait(o.maxLockWait))
	}
	if o.lockShards > 0 {
		lockOpts = append(lockOpts, lock.WithShards(o.lockShards))
	}
	r.locks = lock.NewManager(runtimeAncestry{r: r}, lockOpts...)
	return r
}

// runtimeAncestry exposes the action tree to the lock manager,
// including family (top-level root) resolution for nested-transaction
// deadlock detection.
type runtimeAncestry struct {
	r *Runtime
}

var (
	_ lock.Ancestry       = runtimeAncestry{}
	_ lock.FamilyResolver = runtimeAncestry{}
)

// IsSameOrAncestor implements lock.Ancestry.
func (ra runtimeAncestry) IsSameOrAncestor(a, b ids.ActionID) bool {
	return ra.r.isSameOrAncestor(a, b)
}

// TopLevelOf implements lock.FamilyResolver.
func (ra runtimeAncestry) TopLevelOf(id ids.ActionID) ids.ActionID {
	ra.r.mu.Lock()
	cur := ra.r.actions[id]
	ra.r.mu.Unlock()
	if cur == nil {
		return id
	}
	for cur.parent != nil {
		cur = cur.parent
	}
	return cur.id
}

// Locks exposes the lock manager for introspection by tests and the
// experiment harness.
func (r *Runtime) Locks() *lock.Manager { return r.locks }

// isSameOrAncestor serves the lock manager's ancestry queries.
func (r *Runtime) isSameOrAncestor(a, b ids.ActionID) bool {
	r.mu.Lock()
	cur := r.actions[b]
	r.mu.Unlock()
	for ; cur != nil; cur = cur.parent {
		if cur.id == a {
			return true
		}
	}
	return false
}

func (r *Runtime) register(a *Action) {
	r.mu.Lock()
	r.actions[a.id] = a
	r.mu.Unlock()
	beginsByKind[a.kind].Inc()
	depthHist.Observe(uint64(a.depth))
	activeActions.Inc()
	r.observe(EventBegin, a)
}

// observe delivers an event to the runtime's observer, if any.
func (r *Runtime) observe(kind EventKind, a *Action) {
	if r.observer == nil {
		return
	}
	ev := Event{
		Kind:    kind,
		Time:    r.clk.Now(),
		Action:  a.id,
		Colours: a.colours,
	}
	if a.parent != nil {
		ev.Parent = a.parent.id
	}
	r.observer(ev)
}

func (r *Runtime) unregister(id ids.ActionID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.actions, id)
}

// ActiveActions returns the number of actions currently registered, for
// leak checks in tests.
func (r *Runtime) ActiveActions() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.actions)
}

// BeginOption configures one action.
type BeginOption interface{ applyBegin(*beginOptions) }

type beginOptions struct {
	colours        colour.Set
	coloursSet     bool
	extraColours   []colour.Colour
	privateColours []colour.Colour
	defaultColour  colour.Colour
	readColour     colour.Colour
	writeColour    colour.Colour
	companion      colour.Colour
}

type coloursOption colour.Set

func (o coloursOption) applyBegin(b *beginOptions) {
	b.colours = colour.Set(o)
	b.coloursSet = true
}

// WithColours gives the action exactly the listed colours instead of
// inheriting its parent's set.
func WithColours(cs ...colour.Colour) BeginOption {
	return coloursOption(colour.NewSet(cs...))
}

// WithColourSet is WithColours for an existing set.
func WithColourSet(s colour.Set) BeginOption { return coloursOption(s) }

type extraColoursOption []colour.Colour

func (o extraColoursOption) applyBegin(b *beginOptions) {
	b.extraColours = append(b.extraColours, o...)
}

// WithExtraColours gives the action its parent's colours plus the listed
// ones.
func WithExtraColours(cs ...colour.Colour) BeginOption { return extraColoursOption(cs) }

type defaultColourOption colour.Colour

func (o defaultColourOption) applyBegin(b *beginOptions) { b.defaultColour = colour.Colour(o) }

// WithDefaultColour selects the colour used by lock and write calls that
// do not name one explicitly. It must be a member of the action's set.
func WithDefaultColour(c colour.Colour) BeginOption { return defaultColourOption(c) }

type readColourOption colour.Colour

func (o readColourOption) applyBegin(b *beginOptions) { b.readColour = colour.Colour(o) }

// WithReadColour selects the colour used by read locks that do not name a
// colour, overriding WithDefaultColour for reads. The structures layer
// uses it: a serializing constituent reads in the container colour so its
// read locks are retained by the container (paper §5.3).
func WithReadColour(c colour.Colour) BeginOption { return readColourOption(c) }

type writeColourOption colour.Colour

func (o writeColourOption) applyBegin(b *beginOptions) { b.writeColour = colour.Colour(o) }

// WithWriteColour selects the colour used by write locks (and recorded
// writes) that do not name a colour, overriding WithDefaultColour for
// writes.
func WithWriteColour(c colour.Colour) BeginOption { return writeColourOption(c) }

type companionOption colour.Colour

func (o companionOption) applyBegin(b *beginOptions) { b.companion = colour.Colour(o) }

// WithWriteCompanion makes every write lock acquisition also acquire an
// exclusive-read lock on the object in colour c. This implements the
// §5.3/§5.4 schemes where written objects must stay inaccessible to
// outsiders after the writer's (top-level) commit: the companion
// exclusive-read lock is inherited by the enclosing container while the
// write lock is released.
func WithWriteCompanion(c colour.Colour) BeginOption { return companionOption(c) }

type privateColoursOption []colour.Colour

func (o privateColoursOption) applyBegin(b *beginOptions) {
	b.privateColours = append(b.privateColours, o...)
}

// WithPrivateColours adds colours to the action that its children do NOT
// inherit by default. A private colour anchors n-level independent
// actions (paper §5.6, fig 15): a deep descendant created with exactly
// that colour commits its effects to this action's level, skipping every
// intermediate action.
func WithPrivateColours(cs ...colour.Colour) BeginOption { return privateColoursOption(cs) }

// Action is one (coloured) atomic action.
type Action struct {
	rt      *Runtime
	id      ids.ActionID
	parent  *Action
	colours colour.Set
	// heritable is the subset of colours children inherit by default
	// (colours minus the private ones).
	heritable colour.Set
	defRead   colour.Colour
	defWrite  colour.Colour
	// companion, when valid, is the colour of the exclusive-read lock
	// acquired alongside every write lock.
	companion colour.Colour
	// kind and depth are fixed at Begin for telemetry: the structural
	// relation to the parent and the nesting depth (top level = 1).
	kind  structureKind
	depth int

	// ctx is cancelled when the action aborts, unblocking lock waits.
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	status   Status
	children map[ids.ActionID]*Action
	undo     []undoRecord
	undoByID map[ids.ObjectID]int // index into undo
	// completionHooks run once, after the action completed (status
	// set, effects applied or undone, locks transferred/released).
	// Applications use them for compensation: e.g. withdrawing a
	// bulletin posting when the invoking action turns out to abort.
	completionHooks []func(Status)
}

// Begin starts a top-level action. With no colour options it receives a
// single fresh colour, i.e. it is a conventional top-level atomic action.
func (r *Runtime) Begin(opts ...BeginOption) (*Action, error) {
	return r.begin(nil, opts...)
}

// Begin starts an action nested in a. With no colour options the child
// inherits the parent's colours (conventional nested action).
func (a *Action) Begin(opts ...BeginOption) (*Action, error) {
	if a == nil {
		return nil, errors.New("action: Begin on nil parent")
	}
	return a.rt.begin(a, opts...)
}

func (r *Runtime) begin(parent *Action, opts ...BeginOption) (*Action, error) {
	var bo beginOptions
	for _, opt := range opts {
		opt.applyBegin(&bo)
	}

	var cs colour.Set
	switch {
	case bo.coloursSet:
		cs = bo.colours
	case parent != nil:
		cs = parent.heritable
	default:
		cs = colour.Singleton(colour.Fresh())
	}
	cs = cs.With(bo.extraColours...)
	heritable := cs
	cs = cs.With(bo.privateColours...)
	if cs.Len() == 0 {
		return nil, errors.New("action: empty colour set")
	}

	pick := func(specific colour.Colour, inherited func(*Action) colour.Colour) (colour.Colour, error) {
		c := specific
		if c == colour.None {
			c = bo.defaultColour
		}
		if c == colour.None {
			if parent != nil && cs.Contains(inherited(parent)) {
				c = inherited(parent)
			} else {
				c = cs.Any()
			}
		}
		if !cs.Contains(c) {
			return colour.None, fmt.Errorf("action: default colour %v not in set %v: %w", c, cs, ErrColourNotHeld)
		}
		return c, nil
	}
	defRead, err := pick(bo.readColour, func(p *Action) colour.Colour { return p.defRead })
	if err != nil {
		return nil, err
	}
	defWrite, err := pick(bo.writeColour, func(p *Action) colour.Colour { return p.defWrite })
	if err != nil {
		return nil, err
	}
	if bo.companion != colour.None && !cs.Contains(bo.companion) {
		return nil, fmt.Errorf("action: companion colour %v not in set %v: %w", bo.companion, cs, ErrColourNotHeld)
	}

	kind, depth := kindTop, 1
	if parent != nil {
		depth = parent.depth + 1
		switch {
		case cs.Equal(parent.heritable):
			kind = kindNested
		case cs.Disjoint(parent.colours):
			kind = kindIndependent
		default:
			kind = kindRecoloured
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	a := &Action{
		rt:        r,
		id:        ids.NewActionID(),
		parent:    parent,
		colours:   cs,
		heritable: heritable,
		defRead:   defRead,
		defWrite:  defWrite,
		companion: bo.companion,
		kind:      kind,
		depth:     depth,
		ctx:       ctx,
		cancel:    cancel,
		status:    Active,
		children:  make(map[ids.ActionID]*Action),
		undoByID:  make(map[ids.ObjectID]int),
	}

	if parent != nil {
		parent.mu.Lock()
		if parent.status != Active {
			parent.mu.Unlock()
			cancel()
			return nil, fmt.Errorf("action: parent %v is %v: %w", parent.id, parent.status, ErrNotActive)
		}
		parent.children[a.id] = a
		parent.mu.Unlock()
	}
	r.register(a)
	return a, nil
}

// ID returns the action identifier.
func (a *Action) ID() ids.ActionID { return a.id }

// Colours returns the action's (static) colour set.
func (a *Action) Colours() colour.Set { return a.colours }

// DefaultColour returns the colour used by write operations that do not
// name one.
func (a *Action) DefaultColour() colour.Colour { return a.defWrite }

// ReadColour returns the colour used by read locks that do not name one.
func (a *Action) ReadColour() colour.Colour { return a.defRead }

// Parent returns the enclosing action, or nil for a top-level action.
func (a *Action) Parent() *Action { return a.parent }

// Status returns the action's lifecycle state.
func (a *Action) Status() Status {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.status
}

// Runtime returns the runtime the action belongs to.
func (a *Action) Runtime() *Runtime { return a.rt }

// heir returns the closest ancestor possessing colour c (paper §5.2
// commit rule), or ok == false when none exists, i.e. a is the outermost
// action of colour c and the colour's changes become permanent.
func (a *Action) heir(c colour.Colour) (*Action, bool) {
	for anc := a.parent; anc != nil; anc = anc.parent {
		if anc.colours.Contains(c) {
			return anc, true
		}
	}
	return nil, false
}

// defaultFor picks the default colour for a lock mode.
func (a *Action) defaultFor(mode lock.Mode) colour.Colour {
	if mode == lock.Read {
		return a.defRead
	}
	return a.defWrite
}

// Lock acquires a lock on the object in the given mode using the given
// colour, blocking until granted, the action aborts, or the lock manager
// reports a deadlock/timeout. When the action has a write companion
// colour, write locks are accompanied by an exclusive-read lock in that
// colour (§5.3 scheme).
func (a *Action) Lock(obj ids.ObjectID, mode lock.Mode, c colour.Colour) error {
	if c == colour.None {
		c = a.defaultFor(mode)
	}
	if !a.colours.Contains(c) {
		return fmt.Errorf("action %v locking with colour %v (own %v): %w", a.id, c, a.colours, ErrColourNotHeld)
	}
	if a.Status() != Active {
		return ErrNotActive
	}
	if err := a.acquire(obj, mode, c); err != nil {
		return err
	}
	if mode == lock.Write && a.companion.Valid() && a.companion != c {
		return a.acquire(obj, lock.ExclusiveRead, a.companion)
	}
	return nil
}

func (a *Action) acquire(obj ids.ObjectID, mode lock.Mode, c colour.Colour) error {
	err := a.rt.locks.Acquire(a.ctx, lock.Request{
		Object: obj,
		Owner:  a.id,
		Colour: c,
		Mode:   mode,
	})
	if errors.Is(err, context.Canceled) {
		return ErrAborted
	}
	return err
}

// TryLock is Lock without blocking; it returns lock.ErrConflict when the
// lock is unavailable.
func (a *Action) TryLock(obj ids.ObjectID, mode lock.Mode, c colour.Colour) error {
	if c == colour.None {
		c = a.defaultFor(mode)
	}
	if !a.colours.Contains(c) {
		return fmt.Errorf("action %v locking with colour %v (own %v): %w", a.id, c, a.colours, ErrColourNotHeld)
	}
	if a.Status() != Active {
		return ErrNotActive
	}
	return a.rt.locks.TryAcquire(lock.Request{
		Object: obj,
		Owner:  a.id,
		Colour: c,
		Mode:   mode,
	})
}

// RecordWrite registers a before-image for the object prior to this
// action's first write to it, under the given colour. The object layer
// calls it after acquiring the write lock and before mutating state.
// created marks objects that did not exist before this action.
func (a *Action) RecordWrite(res Recoverable, c colour.Colour, before store.State, created bool) error {
	if c == colour.None {
		c = a.defWrite
	}
	if !a.colours.Contains(c) {
		return fmt.Errorf("action %v writing with colour %v (own %v): %w", a.id, c, a.colours, ErrColourNotHeld)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.status != Active {
		return ErrNotActive
	}
	id := res.ObjectID()
	if _, dup := a.undoByID[id]; dup {
		return nil // first before-image per object wins
	}
	a.undoByID[id] = len(a.undo)
	a.undo = append(a.undo, undoRecord{res: res, colour: c, before: before, created: created})
	return nil
}

// HasWriteRecord reports whether the action already recorded a
// before-image for the object (so the object layer can skip re-capture).
func (a *Action) HasWriteRecord(id ids.ObjectID) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.undoByID[id]
	return ok
}

// HasWrites reports whether the action has written any object at all
// (persistent or volatile-only). A participant for which this is false
// performed pure reads: the commit protocol lets it vote yes without
// logging and drops it from the completion phase. Volatile-only writers
// deliberately count as writers — their commit must still run so heirs
// and completion hooks fire.
func (a *Action) HasWrites() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.undo) > 0
}

// PendingWrites captures the serialized current states of every
// persistent object this action has written, as one batch. The
// distributed commit protocol (internal/dist) forces this write set to
// the intention log during its prepare phase; a crash between prepare
// and decision is then repaired from the log.
func (a *Action) PendingWrites() (store.Batch, error) {
	a.mu.Lock()
	records := make([]undoRecord, len(a.undo))
	copy(records, a.undo)
	a.mu.Unlock()

	batch := store.Batch{Writes: make(map[ids.ObjectID]store.State, len(records))}
	for _, rec := range records {
		if rec.res.Persister() == nil {
			continue
		}
		st, err := rec.res.CaptureState()
		if err != nil {
			return store.Batch{}, fmt.Errorf("capture %v: %w", rec.res.ObjectID(), err)
		}
		batch.Writes[rec.res.ObjectID()] = st
	}
	return batch, nil
}

// Commit terminates the action successfully.
//
// Per colour c of the action: if an ancestor possesses c, the locks and
// recovery records of colour c pass to the closest such ancestor;
// otherwise the write set of colour c is flushed atomically to the
// objects' stable stores and the locks are released (permanence of
// effect, paper §5.1 property 3).
//
// Commit fails with ErrActiveChildren while nested actions sharing any
// colour with a are still active. Active colour-disjoint children
// (independent actions) are left running. On permanence failure the
// action is aborted and ErrPermanence returned.
func (a *Action) Commit() error {
	a.mu.Lock()
	if a.status != Active {
		defer a.mu.Unlock()
		return fmt.Errorf("action %v is %v: %w", a.id, a.status, ErrNotActive)
	}
	for _, child := range a.children {
		if child.Status() == Active && !child.colours.Disjoint(a.colours) {
			a.mu.Unlock()
			return fmt.Errorf("action %v: child %v still active: %w", a.id, child.id, ErrActiveChildren)
		}
	}

	// Partition this action's recovery records by heir.
	type flush struct {
		persister Persister
		batch     store.Batch
	}
	var flushes []flush
	flushIndex := make(map[Persister]int)
	transfer := make(map[*Action][]undoRecord)

	for _, rec := range a.undo {
		if h, ok := a.heir(rec.colour); ok {
			transfer[h] = append(transfer[h], rec)
			continue
		}
		// Outermost for this colour: the current state becomes
		// permanent.
		p := rec.res.Persister()
		if p == nil {
			continue // volatile-only object: nothing to flush
		}
		st, err := rec.res.CaptureState()
		if err != nil {
			a.mu.Unlock()
			a.Abort()
			return fmt.Errorf("capture %v for permanence: %w (%w)", rec.res.ObjectID(), err, ErrPermanence)
		}
		i, ok := flushIndex[p]
		if !ok {
			i = len(flushes)
			flushIndex[p] = i
			flushes = append(flushes, flush{persister: p, batch: store.Batch{Writes: make(map[ids.ObjectID]store.State)}})
		}
		flushes[i].batch.Writes[rec.res.ObjectID()] = st
	}

	// Flush permanence batches before publishing the commit. Each
	// batch is atomic within its store; cross-store atomicity is the
	// job of the distributed commit protocol (internal/dist).
	for _, f := range flushes {
		if err := f.persister.ApplyBatch(f.batch); err != nil {
			a.mu.Unlock()
			a.Abort()
			return fmt.Errorf("flush write set: %w (%w)", err, ErrPermanence)
		}
	}

	a.status = Committed
	a.mu.Unlock()

	// Merge recovery records into heirs: the heir keeps its own older
	// before-image when it has one.
	for h, recs := range transfer {
		h.adoptRecords(recs)
	}

	// Transfer / release locks per colour.
	a.rt.locks.CommitTransfer(a.id, func(c colour.Colour) (ids.ActionID, bool) {
		if h, ok := a.heir(c); ok {
			assertHeirHoldsColour(a, h, c)
			return h.id, true
		}
		return 0, false
	})

	a.finish()
	return nil
}

// adoptRecords merges a committing child's recovery records into the
// heir's undo log.
func (h *Action) adoptRecords(recs []undoRecord) {
	recordTransfers.Add(uint64(len(recs)))
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, rec := range recs {
		if _, exists := h.undoByID[rec.res.ObjectID()]; exists {
			continue // heir's own before-image is older
		}
		h.undoByID[rec.res.ObjectID()] = len(h.undo)
		h.undo = append(h.undo, rec)
	}
}

// Abort terminates the action undoing its effects: active descendants
// sharing a colour abort first (deepest first), every recorded
// before-image is restored in reverse order, and all locks are
// discarded. Colour-disjoint active children — independent actions —
// survive. Aborting a completed action is a no-op returning nil, so
// defer a.Abort() is safe cleanup.
func (a *Action) Abort() error {
	a.mu.Lock()
	if a.status != Active {
		a.mu.Unlock()
		return nil
	}
	a.status = Aborted
	children := make([]*Action, 0, len(a.children))
	for _, c := range a.children {
		children = append(children, c)
	}
	undo := a.undo
	a.undo = nil
	a.undoByID = make(map[ids.ObjectID]int)
	a.mu.Unlock()

	// Unblock any lock wait in flight on this action.
	a.cancel()

	// Cascade to non-independent descendants first so their (younger)
	// before-images are restored before ours.
	for _, child := range children {
		if child.colours.Disjoint(a.colours) {
			continue // independent action: survives invoker abort
		}
		_ = child.Abort() // Abort on completed children is a no-op
	}

	// Restore before-images in reverse order.
	var firstErr error
	for i := len(undo) - 1; i >= 0; i-- {
		rec := undo[i]
		var err error
		if rec.created {
			err = rec.res.RestoreState(nil)
		} else {
			err = rec.res.RestoreState(rec.before)
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("restore %v: %w", rec.res.ObjectID(), err)
		}
	}

	a.rt.locks.ReleaseAll(a.id)
	a.finish()
	return firstErr
}

// OnCompletion registers fn to run after the action completes, with the
// final status. Hooks run outside the action: they see the post-commit
// (or post-abort) world and typically start new top-level actions —
// the application-specific compensations of paper §3.4. Registering on
// a completed action runs fn immediately.
func (a *Action) OnCompletion(fn func(Status)) {
	a.mu.Lock()
	st := a.status
	if st == Active {
		a.completionHooks = append(a.completionHooks, fn)
		a.mu.Unlock()
		return
	}
	a.mu.Unlock()
	fn(st)
}

// finish detaches a completed action from the tree and the runtime, and
// runs completion hooks.
func (a *Action) finish() {
	a.cancel()
	if a.parent != nil {
		a.parent.mu.Lock()
		delete(a.parent.children, a.id)
		a.parent.mu.Unlock()
	}
	a.rt.unregister(a.id)

	a.mu.Lock()
	hooks := a.completionHooks
	a.completionHooks = nil
	st := a.status
	a.mu.Unlock()

	activeActions.Dec()
	kind := EventCommit
	if st == Aborted {
		abortsByKind[a.kind].Inc()
		kind = EventAbort
	} else {
		commitsByKind[a.kind].Inc()
	}
	a.rt.observe(kind, a)

	for _, h := range hooks {
		h(st)
	}
}

// Run executes fn inside a new nested action and commits it when fn
// returns nil, aborts it when fn returns an error or panics (the panic
// is re-raised). It is the convenience wrapper used throughout the
// examples.
func (a *Action) Run(fn func(*Action) error, opts ...BeginOption) error {
	child, err := a.Begin(opts...)
	if err != nil {
		return err
	}
	return runAndComplete(child, fn)
}

// Run executes fn inside a new top-level action; see Action.Run.
func (r *Runtime) Run(fn func(*Action) error, opts ...BeginOption) error {
	a, err := r.Begin(opts...)
	if err != nil {
		return err
	}
	return runAndComplete(a, fn)
}

func runAndComplete(a *Action, fn func(*Action) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			_ = a.Abort()
			panic(r)
		}
	}()
	if err := fn(a); err != nil {
		if abortErr := a.Abort(); abortErr != nil {
			return fmt.Errorf("%w (abort: %v)", err, abortErr)
		}
		return err
	}
	return a.Commit()
}
