//go:build invariants

package action

import (
	"fmt"

	"mca/internal/colour"
)

// assertHeirHoldsColour asserts the paper's commit rule: the heir chosen
// for a committing action's locks of colour c actually possesses c in its
// own (static) colour set. heir resolution walks the ancestor chain
// testing exactly that, so a violation means the resolution regressed.
// It panics on violation.
func assertHeirHoldsColour(committing, heir *Action, c colour.Colour) {
	if !heir.colours.Contains(c) {
		panic(fmt.Sprintf("action invariant: commit of %v transfers colour %v locks to heir %v which does not hold it (own %v)",
			committing.id, c, heir.id, heir.colours))
	}
}
