package action_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mca/internal/action"
	"mca/internal/colour"
	"mca/internal/lock"
	"mca/internal/store"
)

func TestEventKindString(t *testing.T) {
	tests := []struct {
		kind action.EventKind
		want string
	}{
		{action.EventBegin, "begin"},
		{action.EventCommit, "commit"},
		{action.EventAbort, "abort"},
		{action.EventKind(9), "event(9)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestWithLockShardsConfiguresStripeWidth(t *testing.T) {
	rt := action.NewRuntime(action.WithLockShards(3))
	if got := rt.Locks().ShardCount(); got != 4 {
		t.Fatalf("ShardCount = %d, want 4 (3 rounded up to a power of two)", got)
	}
	// The runtime must behave identically at any stripe width.
	r := newReg("x", nil)
	a := mustBegin(t, rt)
	r.write(t, a, colour.None, "v")
	if err := a.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if n := rt.Locks().LockCount(); n != 0 {
		t.Fatalf("LockCount after top-level commit = %d, want 0", n)
	}
}

func TestWithMaxLockWaitBoundsWaits(t *testing.T) {
	rt := action.NewRuntime(action.WithMaxLockWait(25 * time.Millisecond))
	r := newReg("x", nil)

	holder := mustBegin(t, rt)
	r.write(t, holder, colour.None, "held")

	waiter := mustBegin(t, rt)
	start := time.Now()
	err := r.writeErr(waiter, colour.None, "blocked")
	if !errors.Is(err, lock.ErrTimeout) {
		t.Fatalf("write = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	_ = holder.Abort()
	_ = waiter.Abort()
}

func TestWithObserverReceivesLifecycle(t *testing.T) {
	var (
		mu     sync.Mutex
		events []action.Event
	)
	rt := action.NewRuntime(action.WithObserver(func(ev action.Event) {
		mu.Lock()
		defer mu.Unlock()
		events = append(events, ev)
	}))
	a := mustBegin(t, rt)
	child := mustNest(t, a)
	_ = child.Commit()
	_ = a.Abort()

	mu.Lock()
	defer mu.Unlock()
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4 (2 begins, commit, abort)", len(events))
	}
	if events[0].Kind != action.EventBegin || events[0].Action != a.ID() {
		t.Fatalf("first event = %+v", events[0])
	}
	if events[1].Parent != a.ID() {
		t.Fatalf("child begin parent = %v", events[1].Parent)
	}
	if events[3].Kind != action.EventAbort {
		t.Fatalf("last event = %+v", events[3])
	}
}

func TestPerModeDefaultColours(t *testing.T) {
	rt := action.NewRuntime()
	red, blue := colour.Fresh(), colour.Fresh()

	a := mustBegin(t, rt,
		action.WithColours(red, blue),
		action.WithReadColour(blue),
		action.WithWriteColour(red))
	if a.ReadColour() != blue {
		t.Fatalf("ReadColour = %v", a.ReadColour())
	}
	if a.DefaultColour() != red {
		t.Fatalf("DefaultColour (write) = %v", a.DefaultColour())
	}

	r := newReg("x", nil)
	if err := a.Lock(r.id, lock.Read, colour.None); err != nil {
		t.Fatal(err)
	}
	if !rt.Locks().Holds(a.ID(), r.id, lock.Read, blue) {
		t.Fatal("default read must use the read colour")
	}
	if err := a.Lock(r.id, lock.Write, colour.None); err != nil {
		t.Fatal(err)
	}
	if !rt.Locks().Holds(a.ID(), r.id, lock.Write, red) {
		t.Fatal("default write must use the write colour")
	}
	_ = a.Abort()
}

func TestWriteCompanionAcquiresExclusiveRead(t *testing.T) {
	rt := action.NewRuntime()
	red, blue := colour.Fresh(), colour.Fresh()
	a := mustBegin(t, rt,
		action.WithColours(red, blue),
		action.WithWriteColour(red),
		action.WithWriteCompanion(blue))
	r := newReg("x", nil)
	if err := a.Lock(r.id, lock.Write, colour.None); err != nil {
		t.Fatal(err)
	}
	if !rt.Locks().Holds(a.ID(), r.id, lock.ExclusiveRead, blue) {
		t.Fatal("companion exclusive-read lock missing")
	}
	_ = a.Abort()
}

func TestCompanionOutsideSetRejected(t *testing.T) {
	rt := action.NewRuntime()
	red := colour.Fresh()
	foreign := colour.Fresh()
	if _, err := rt.Begin(action.WithColours(red), action.WithWriteCompanion(foreign)); !errors.Is(err, action.ErrColourNotHeld) {
		t.Fatalf("Begin = %v, want ErrColourNotHeld", err)
	}
}

func TestPrivateColoursNotInherited(t *testing.T) {
	rt := action.NewRuntime()
	anchor := colour.Fresh()
	a := mustBegin(t, rt, action.WithPrivateColours(anchor))
	if !a.Colours().Contains(anchor) {
		t.Fatal("owner must possess the private colour")
	}
	child := mustNest(t, a)
	if child.Colours().Contains(anchor) {
		t.Fatal("children must not inherit private colours")
	}
	_ = a.Abort()
}

func TestParentAndRuntimeAccessors(t *testing.T) {
	rt := action.NewRuntime()
	a := mustBegin(t, rt)
	if a.Parent() != nil {
		t.Fatal("top-level parent must be nil")
	}
	if a.Runtime() != rt {
		t.Fatal("Runtime accessor mismatch")
	}
	child := mustNest(t, a)
	if child.Parent() != a {
		t.Fatal("child parent mismatch")
	}
	_ = a.Abort()
}

func TestTryLockPaths(t *testing.T) {
	rt := action.NewRuntime()
	r := newReg("x", nil)

	holder := mustBegin(t, rt)
	if err := holder.TryLock(r.id, lock.Write, colour.None); err != nil {
		t.Fatal(err)
	}

	other := mustBegin(t, rt)
	if err := other.TryLock(r.id, lock.Write, colour.None); !errors.Is(err, lock.ErrConflict) {
		t.Fatalf("TryLock = %v, want ErrConflict", err)
	}
	_ = other.Commit()
	if err := other.TryLock(r.id, lock.Read, colour.None); !errors.Is(err, action.ErrNotActive) {
		t.Fatalf("TryLock on completed = %v, want ErrNotActive", err)
	}
	_ = holder.Abort()
}

func TestPendingWritesCapturesPersistentObjects(t *testing.T) {
	rt := action.NewRuntime()
	st := store.NewStable()
	persistent := newReg("p0", st)
	volatile := newReg("v0", nil)

	a := mustBegin(t, rt)
	persistent.write(t, a, colour.None, "p1")
	volatile.write(t, a, colour.None, "v1")

	batch, err := a.PendingWrites()
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Writes) != 1 {
		t.Fatalf("write set = %d entries, want 1 (volatile objects excluded)", len(batch.Writes))
	}
	if got := string(batch.Writes[persistent.id]); got != "p1" {
		t.Fatalf("captured state = %q", got)
	}
	_ = a.Abort()
}

func TestOnCompletionImmediateWhenAlreadyDone(t *testing.T) {
	rt := action.NewRuntime()
	a := mustBegin(t, rt)
	_ = a.Commit()

	called := make(chan action.Status, 1)
	a.OnCompletion(func(st action.Status) { called <- st })
	select {
	case st := <-called:
		if st != action.Committed {
			t.Fatalf("status = %v", st)
		}
	default:
		t.Fatal("hook on completed action must run immediately")
	}
}

func TestBeginOnNilParent(t *testing.T) {
	var a *action.Action
	if _, err := a.Begin(); err == nil {
		t.Fatal("Begin on nil parent must fail")
	}
}

func TestWithColourSetOption(t *testing.T) {
	rt := action.NewRuntime()
	set := colour.NewSet(colour.Fresh(), colour.Fresh())
	a := mustBegin(t, rt, action.WithColourSet(set))
	if !a.Colours().Equal(set) {
		t.Fatalf("colours = %v, want %v", a.Colours(), set)
	}
	_ = a.Abort()
}
