package action_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mca/internal/action"
	"mca/internal/colour"
	"mca/internal/ids"
	"mca/internal/lock"
	"mca/internal/store"
)

// reg is a minimal Recoverable register for driving the runtime directly.
type reg struct {
	id ids.ObjectID
	p  action.Persister

	mu     sync.Mutex
	val    string
	exists bool
}

func newReg(val string, p action.Persister) *reg {
	return &reg{id: ids.NewObjectID(), p: p, val: val, exists: true}
}

func (r *reg) ObjectID() ids.ObjectID      { return r.id }
func (r *reg) Persister() action.Persister { return r.p }

func (r *reg) CaptureState() (store.State, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return store.State(r.val), nil
}

func (r *reg) RestoreState(s store.State) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s == nil {
		r.val, r.exists = "", false
		return nil
	}
	r.val, r.exists = string(s), true
	return nil
}

func (r *reg) get() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.val
}

func (r *reg) set(v string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.val = v
}

// write performs a locked, recorded write of the register under act.
func (r *reg) write(t *testing.T, act *action.Action, c colour.Colour, v string) {
	t.Helper()
	if err := r.writeErr(act, c, v); err != nil {
		t.Fatalf("write %v under %v: %v", r.id, act.ID(), err)
	}
}

func (r *reg) writeErr(act *action.Action, c colour.Colour, v string) error {
	if err := act.Lock(r.id, lock.Write, c); err != nil {
		return err
	}
	if !act.HasWriteRecord(r.id) {
		before, err := r.CaptureState()
		if err != nil {
			return err
		}
		if err := act.RecordWrite(r, c, before, false); err != nil {
			return err
		}
	}
	r.set(v)
	return nil
}

func mustBegin(t *testing.T, rt *action.Runtime, opts ...action.BeginOption) *action.Action {
	t.Helper()
	a, err := rt.Begin(opts...)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	return a
}

func mustNest(t *testing.T, parent *action.Action, opts ...action.BeginOption) *action.Action {
	t.Helper()
	a, err := parent.Begin(opts...)
	if err != nil {
		t.Fatalf("Begin nested: %v", err)
	}
	return a
}

func storedVal(t *testing.T, s *store.Stable, id ids.ObjectID) (string, bool) {
	t.Helper()
	st, err := s.Read(id)
	if errors.Is(err, store.ErrNotFound) {
		return "", false
	}
	if err != nil {
		t.Fatalf("store read: %v", err)
	}
	return string(st), true
}

func TestTopLevelCommitMakesPermanent(t *testing.T) {
	rt := action.NewRuntime()
	st := store.NewStable()
	r := newReg("initial", st)

	a := mustBegin(t, rt)
	r.write(t, a, colour.None, "updated")
	if err := a.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	if got := r.get(); got != "updated" {
		t.Fatalf("in-memory value = %q", got)
	}
	got, ok := storedVal(t, st, r.id)
	if !ok || got != "updated" {
		t.Fatalf("stable state = %q, %v; want %q", got, ok, "updated")
	}
	if n := rt.ActiveActions(); n != 0 {
		t.Fatalf("ActiveActions = %d after completion", n)
	}
}

func TestTopLevelAbortRestores(t *testing.T) {
	rt := action.NewRuntime()
	st := store.NewStable()
	r := newReg("initial", st)

	a := mustBegin(t, rt)
	r.write(t, a, colour.None, "scribble")
	if err := a.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	if got := r.get(); got != "initial" {
		t.Fatalf("value after abort = %q, want %q", got, "initial")
	}
	if _, ok := storedVal(t, st, r.id); ok {
		t.Fatal("abort must not touch stable storage")
	}
}

func TestNestedCommitThenParentAbortUndoes(t *testing.T) {
	// Conventional nesting: a nested action's committed effects are
	// provisional until the top level commits (paper §2, fig 1).
	rt := action.NewRuntime()
	r := newReg("v0", nil)

	top := mustBegin(t, rt)
	child := mustNest(t, top)
	r.write(t, child, colour.None, "v1")
	if err := child.Commit(); err != nil {
		t.Fatalf("child commit: %v", err)
	}
	if got := r.get(); got != "v1" {
		t.Fatalf("value after child commit = %q", got)
	}
	if err := top.Abort(); err != nil {
		t.Fatalf("top abort: %v", err)
	}
	if got := r.get(); got != "v0" {
		t.Fatalf("value after top abort = %q, want v0 (inherited record restored)", got)
	}
}

func TestNestedAbortRestoresOnlyItsWrites(t *testing.T) {
	rt := action.NewRuntime()
	rA := newReg("a0", nil)
	rB := newReg("b0", nil)

	top := mustBegin(t, rt)
	rA.write(t, top, colour.None, "a1")

	child := mustNest(t, top)
	rB.write(t, child, colour.None, "b1")
	if err := child.Abort(); err != nil {
		t.Fatalf("child abort: %v", err)
	}

	if got := rB.get(); got != "b0" {
		t.Fatalf("child's write not undone: %q", got)
	}
	if got := rA.get(); got != "a1" {
		t.Fatalf("parent's write wrongly undone: %q", got)
	}
	if err := top.Commit(); err != nil {
		t.Fatalf("top commit: %v", err)
	}
	if got := rA.get(); got != "a1" {
		t.Fatalf("after top commit: %q", got)
	}
}

func TestParentKeepsOlderBeforeImage(t *testing.T) {
	// Parent writes, child writes the same object and commits, parent
	// aborts: the object returns to its state before the PARENT's
	// write.
	rt := action.NewRuntime()
	r := newReg("v0", nil)

	top := mustBegin(t, rt)
	r.write(t, top, colour.None, "v1")
	child := mustNest(t, top)
	r.write(t, child, colour.None, "v2")
	if err := child.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := top.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := r.get(); got != "v0" {
		t.Fatalf("value = %q, want v0", got)
	}
}

func TestChildBeforeImageTransfersWhenParentDidNotWrite(t *testing.T) {
	rt := action.NewRuntime()
	r := newReg("v0", nil)

	top := mustBegin(t, rt)
	child := mustNest(t, top)
	r.write(t, child, colour.None, "v1")
	if err := child.Commit(); err != nil {
		t.Fatal(err)
	}
	// Parent writes after inheriting the record: no second record.
	r.write(t, top, colour.None, "v2")
	if err := top.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := r.get(); got != "v0" {
		t.Fatalf("value = %q, want v0 (the child's inherited before-image)", got)
	}
}

func TestFig10ColouredAction(t *testing.T) {
	// Paper fig 10: A is blue; B (nested) is red and blue. B locks Or
	// with red and Ob with blue. After B commits, red locks released
	// (red effects permanent), blue locks retained by A. If A aborts,
	// only Ob's effects are undone.
	rt := action.NewRuntime()
	st := store.NewStable()
	red, blue := colour.Fresh(), colour.Fresh()

	or := newReg("or0", st)
	ob := newReg("ob0", st)

	a := mustBegin(t, rt, action.WithColours(blue))
	b := mustNest(t, a, action.WithColours(red, blue))

	or.write(t, b, red, "or1")
	ob.write(t, b, blue, "ob1")

	if err := b.Commit(); err != nil {
		t.Fatalf("B commit: %v", err)
	}

	// Red effects are permanent now.
	if got, ok := storedVal(t, st, or.id); !ok || got != "or1" {
		t.Fatalf("Or stable state = %q, %v; want or1", got, ok)
	}
	// Blue effects are not.
	if _, ok := storedVal(t, st, ob.id); ok {
		t.Fatal("Ob must not be stable before A commits")
	}
	// A inherited the blue write lock.
	if !rt.Locks().Holds(a.ID(), ob.id, lock.Write, blue) {
		t.Fatal("A must inherit B's blue write lock on Ob")
	}
	// The red lock is gone: a stranger can read Or.
	stranger := mustBegin(t, rt)
	if err := stranger.Lock(or.id, lock.Read, colour.None); err != nil {
		t.Fatalf("stranger read of Or: %v", err)
	}
	_ = stranger.Abort()

	if err := a.Abort(); err != nil {
		t.Fatalf("A abort: %v", err)
	}
	if got := ob.get(); got != "ob0" {
		t.Fatalf("Ob after A abort = %q, want ob0", got)
	}
	if got := or.get(); got != "or1" {
		t.Fatalf("Or after A abort = %q, want or1 (red effects survive)", got)
	}
}

func TestHeirSkipsIntermediateWithoutColour(t *testing.T) {
	// Fig 15 essence: A(blue) -> B(red) -> E(blue). E's blue effects
	// pass to A, skipping B; B's abort does not undo them, A's does.
	rt := action.NewRuntime()
	red, blue := colour.Fresh(), colour.Fresh()
	r := newReg("v0", nil)

	a := mustBegin(t, rt, action.WithColours(blue))
	b := mustNest(t, a, action.WithColours(red))
	e := mustNest(t, b, action.WithColours(blue))

	r.write(t, e, blue, "v1")
	if err := e.Commit(); err != nil {
		t.Fatal(err)
	}
	if !rt.Locks().Holds(a.ID(), r.id, lock.Write, blue) {
		t.Fatal("A must inherit E's blue lock, skipping B")
	}

	if err := b.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := r.get(); got != "v1" {
		t.Fatalf("B's abort undid E's blue effects: %q", got)
	}

	if err := a.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := r.get(); got != "v0" {
		t.Fatalf("A's abort must undo E's effects: %q", got)
	}
}

func TestCommitWithActiveSameColourChildFails(t *testing.T) {
	rt := action.NewRuntime()
	a := mustBegin(t, rt)
	child := mustNest(t, a)

	if err := a.Commit(); !errors.Is(err, action.ErrActiveChildren) {
		t.Fatalf("Commit = %v, want ErrActiveChildren", err)
	}
	if err := child.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatalf("Commit after child completed: %v", err)
	}
}

func TestCommitWithActiveIndependentChildSucceeds(t *testing.T) {
	rt := action.NewRuntime()
	a := mustBegin(t, rt)
	indep := mustNest(t, a, action.WithColours(colour.Fresh()))

	if err := a.Commit(); err != nil {
		t.Fatalf("Commit with colour-disjoint child: %v", err)
	}
	if indep.Status() != action.Active {
		t.Fatalf("independent child = %v, want Active", indep.Status())
	}
	if err := indep.Commit(); err != nil {
		t.Fatalf("independent child commit: %v", err)
	}
}

func TestAbortCascadesToSameColourChildrenButNotIndependent(t *testing.T) {
	rt := action.NewRuntime()
	rNested := newReg("n0", nil)
	rIndep := newReg("i0", nil)

	a := mustBegin(t, rt)
	nested := mustNest(t, a)
	indep := mustNest(t, a, action.WithColours(colour.Fresh()))

	rNested.write(t, nested, colour.None, "n1")
	rIndep.write(t, indep, colour.None, "i1")

	if err := a.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	if nested.Status() != action.Aborted {
		t.Fatalf("nested child = %v, want Aborted", nested.Status())
	}
	if got := rNested.get(); got != "n0" {
		t.Fatalf("nested write not undone: %q", got)
	}
	if indep.Status() != action.Active {
		t.Fatalf("independent child = %v, want Active (fig 7: survives invoker abort)", indep.Status())
	}
	if err := indep.Commit(); err != nil {
		t.Fatalf("independent commit after invoker abort: %v", err)
	}
	if got := rIndep.get(); got != "i1" {
		t.Fatalf("independent effects lost: %q", got)
	}
}

func TestAbortUnblocksLockWait(t *testing.T) {
	rt := action.NewRuntime()
	obj := ids.NewObjectID()
	c := colour.Fresh()

	holder := mustBegin(t, rt, action.WithColours(c))
	if err := holder.Lock(obj, lock.Write, c); err != nil {
		t.Fatal(err)
	}

	waiter := mustBegin(t, rt, action.WithColours(c))
	got := make(chan error, 1)
	go func() {
		got <- waiter.Lock(obj, lock.Write, c)
	}()
	time.Sleep(20 * time.Millisecond)

	if err := waiter.Abort(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if !errors.Is(err, action.ErrAborted) {
			t.Fatalf("Lock = %v, want ErrAborted", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("aborting the waiter did not unblock its lock wait")
	}
	_ = holder.Abort()
}

func TestColourNotHeldErrors(t *testing.T) {
	rt := action.NewRuntime()
	foreign := colour.Fresh()
	a := mustBegin(t, rt)
	r := newReg("x", nil)

	if err := a.Lock(r.id, lock.Read, foreign); !errors.Is(err, action.ErrColourNotHeld) {
		t.Fatalf("Lock = %v, want ErrColourNotHeld", err)
	}
	if err := a.TryLock(r.id, lock.Read, foreign); !errors.Is(err, action.ErrColourNotHeld) {
		t.Fatalf("TryLock = %v, want ErrColourNotHeld", err)
	}
	if err := a.RecordWrite(r, foreign, nil, false); !errors.Is(err, action.ErrColourNotHeld) {
		t.Fatalf("RecordWrite = %v, want ErrColourNotHeld", err)
	}
	_ = a.Abort()
}

func TestOperationsOnCompletedAction(t *testing.T) {
	rt := action.NewRuntime()
	a := mustBegin(t, rt)
	r := newReg("x", nil)
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := a.Lock(r.id, lock.Read, colour.None); !errors.Is(err, action.ErrNotActive) {
		t.Fatalf("Lock after commit = %v, want ErrNotActive", err)
	}
	if err := a.Commit(); !errors.Is(err, action.ErrNotActive) {
		t.Fatalf("double Commit = %v, want ErrNotActive", err)
	}
	if err := a.Abort(); err != nil {
		t.Fatalf("Abort after commit must be a no-op, got %v", err)
	}
	if _, err := a.Begin(); !errors.Is(err, action.ErrNotActive) {
		t.Fatalf("Begin under completed = %v, want ErrNotActive", err)
	}
}

func TestRunCommitsOnNilAndAbortsOnError(t *testing.T) {
	rt := action.NewRuntime()
	r := newReg("v0", nil)

	err := rt.Run(func(a *action.Action) error {
		return r.writeErr(a, colour.None, "v1")
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := r.get(); got != "v1" {
		t.Fatalf("value = %q", got)
	}

	wantErr := errors.New("boom")
	err = rt.Run(func(a *action.Action) error {
		if err := r.writeErr(a, colour.None, "v2"); err != nil {
			return err
		}
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("Run = %v, want %v", err, wantErr)
	}
	if got := r.get(); got != "v1" {
		t.Fatalf("value after failed Run = %q, want v1", got)
	}
}

func TestRunRethrowsPanicAfterAbort(t *testing.T) {
	rt := action.NewRuntime()
	r := newReg("v0", nil)

	var recovered any
	func() {
		defer func() { recovered = recover() }()
		_ = rt.Run(func(a *action.Action) error {
			if err := r.writeErr(a, colour.None, "v1"); err != nil {
				return err
			}
			panic("kaboom")
		})
	}()
	if recovered != "kaboom" {
		t.Fatalf("recovered = %v, want kaboom", recovered)
	}
	if got := r.get(); got != "v0" {
		t.Fatalf("value after panic = %q, want v0", got)
	}
	if n := rt.ActiveActions(); n != 0 {
		t.Fatalf("leaked actions: %d", n)
	}
}

func TestPermanenceFailureAborts(t *testing.T) {
	rt := action.NewRuntime()
	st := store.NewStable()
	r := newReg("v0", st)

	st.Crash() // the store will reject the flush
	a := mustBegin(t, rt)
	r.write(t, a, colour.None, "v1")
	err := a.Commit()
	if !errors.Is(err, action.ErrPermanence) {
		t.Fatalf("Commit = %v, want ErrPermanence", err)
	}
	if a.Status() != action.Aborted {
		t.Fatalf("status = %v, want Aborted", a.Status())
	}
	if got := r.get(); got != "v0" {
		t.Fatalf("value = %q, want v0 restored", got)
	}
}

func TestConcurrentNestedActionsFig1(t *testing.T) {
	// Fig 1: B and C concurrent within A, touching disjoint objects.
	rt := action.NewRuntime()
	rB := newReg("b0", nil)
	rC := newReg("c0", nil)

	a := mustBegin(t, rt)
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	run := func(r *reg, v string) {
		defer wg.Done()
		errs <- a.Run(func(child *action.Action) error {
			return r.writeErr(child, colour.None, v)
		})
	}
	wg.Add(2)
	go run(rB, "b1")
	go run(rC, "c1")
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent child: %v", err)
		}
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if rB.get() != "b1" || rC.get() != "c1" {
		t.Fatalf("values = %q, %q", rB.get(), rC.get())
	}
}

func TestConcurrentSiblingsConflictSerialized(t *testing.T) {
	// Two concurrent top-level actions increment the same register;
	// locking must serialize them (no lost update).
	rt := action.NewRuntime()
	r := newReg("0", nil)

	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- rt.Run(func(a *action.Action) error {
				if err := a.Lock(r.id, lock.Write, colour.None); err != nil {
					return err
				}
				if !a.HasWriteRecord(r.id) {
					before, err := r.CaptureState()
					if err != nil {
						return err
					}
					if err := a.RecordWrite(r, a.DefaultColour(), before, false); err != nil {
						return err
					}
				}
				cur := r.get()
				r.set(cur + "+")
				return nil
			})
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("increment action: %v", err)
		}
	}
	want := "0++++++++"
	if got := r.get(); got != want {
		t.Fatalf("value = %q, want %q (lost update?)", got, want)
	}
}

func TestDefaultColourPropagation(t *testing.T) {
	rt := action.NewRuntime()
	red, blue := colour.Fresh(), colour.Fresh()

	a := mustBegin(t, rt, action.WithColours(red, blue), action.WithDefaultColour(blue))
	if a.DefaultColour() != blue {
		t.Fatalf("default = %v, want %v", a.DefaultColour(), blue)
	}
	child := mustNest(t, a)
	if child.DefaultColour() != blue {
		t.Fatalf("child default = %v, want inherited %v", child.DefaultColour(), blue)
	}
	// A child with its own colours falls back to Set.Any.
	other := mustNest(t, a, action.WithColours(red))
	if other.DefaultColour() != red {
		t.Fatalf("other default = %v, want %v", other.DefaultColour(), red)
	}
	_ = a.Abort()
}

func TestBeginValidation(t *testing.T) {
	rt := action.NewRuntime()
	if _, err := rt.Begin(action.WithColourSet(colour.NewSet())); err == nil {
		t.Fatal("empty colour set must fail")
	}
	c1, c2 := colour.Fresh(), colour.Fresh()
	if _, err := rt.Begin(action.WithColours(c1), action.WithDefaultColour(c2)); !errors.Is(err, action.ErrColourNotHeld) {
		t.Fatalf("default colour outside set = %v, want ErrColourNotHeld", err)
	}
}

func TestWithExtraColours(t *testing.T) {
	rt := action.NewRuntime()
	extra := colour.Fresh()
	a := mustBegin(t, rt)
	child := mustNest(t, a, action.WithExtraColours(extra))
	if !child.Colours().Contains(extra) {
		t.Fatal("extra colour missing")
	}
	if child.Colours().Disjoint(a.Colours()) {
		t.Fatal("parent colours must be inherited alongside extras")
	}
	_ = a.Abort()
}

func TestDeepNestingCommitChain(t *testing.T) {
	rt := action.NewRuntime()
	st := store.NewStable()
	r := newReg("d0", st)

	const depth = 16
	chain := make([]*action.Action, 0, depth)
	cur := mustBegin(t, rt)
	chain = append(chain, cur)
	for i := 1; i < depth; i++ {
		cur = mustNest(t, cur)
		chain = append(chain, cur)
	}
	r.write(t, chain[depth-1], colour.None, "dN")
	for i := depth - 1; i >= 0; i-- {
		if err := chain[i].Commit(); err != nil {
			t.Fatalf("commit depth %d: %v", i, err)
		}
	}
	if got, ok := storedVal(t, st, r.id); !ok || got != "dN" {
		t.Fatalf("stable = %q, %v", got, ok)
	}
}

func TestDeepNestingAbortAtTop(t *testing.T) {
	rt := action.NewRuntime()
	r := newReg("d0", nil)

	top := mustBegin(t, rt)
	cur := top
	for i := 0; i < 8; i++ {
		cur = mustNest(t, cur)
		r.write(t, cur, colour.None, fmt.Sprintf("d%d", i+1))
		if err := cur.Commit(); err != nil {
			t.Fatal(err)
		}
		cur = top // write again from a fresh child of top
	}
	if err := top.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := r.get(); got != "d0" {
		t.Fatalf("value = %q, want d0", got)
	}
}

func TestVolatileObjectsSkipPermanence(t *testing.T) {
	rt := action.NewRuntime()
	r := newReg("v0", nil) // no persister

	if err := rt.Run(func(a *action.Action) error {
		return r.writeErr(a, colour.None, "v1")
	}); err != nil {
		t.Fatal(err)
	}
	if got := r.get(); got != "v1" {
		t.Fatalf("value = %q", got)
	}
}

func TestStatusString(t *testing.T) {
	tests := []struct {
		s    action.Status
		want string
	}{
		{action.Active, "active"},
		{action.Committed, "committed"},
		{action.Aborted, "aborted"},
		{action.Status(77), "status(77)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}
