package action_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mca/internal/action"
	"mca/internal/colour"
	"mca/internal/lock"
)

// TestCrossFamilyNestedDeadlockDetected pins the Moss-style deadlock
// case: top-level T1 holds X, top-level T2 holds Y; a child of T1 then
// requests Y and a child of T2 requests X. No single action waits in a
// cycle — the children wait on the other FAMILY's top — but neither
// family can ever commit. The family-level waits-for detector must
// pick a victim.
func TestCrossFamilyNestedDeadlockDetected(t *testing.T) {
	rt := action.NewRuntime()
	x := newReg("x", nil)
	y := newReg("y", nil)

	t1, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	x.write(t, t1, colour.None, "x1")
	y.write(t, t2, colour.None, "y2")

	child1, err := t1.Begin()
	if err != nil {
		t.Fatal(err)
	}
	child2, err := t2.Begin()
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		deadlocks int
	)
	attempt := func(child *action.Action, top *action.Action, target *reg) {
		defer wg.Done()
		err := target.writeErr(child, colour.None, "conflict")
		mu.Lock()
		defer mu.Unlock()
		switch {
		case err == nil:
			// Completed: release the family's locks so the other
			// side proceeds.
			_ = child.Commit()
			_ = top.Commit()
		case errors.Is(err, lock.ErrDeadlock) || errors.Is(err, action.ErrAborted):
			deadlocks++
			_ = top.Abort() // the victim family aborts
		default:
			t.Errorf("unexpected error: %v", err)
		}
	}
	wg.Add(2)
	go attempt(child1, t1, y)
	go attempt(child2, t2, x)

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cross-family deadlock was not detected")
	}
	if deadlocks < 1 {
		t.Fatalf("deadlocks = %d, want >= 1", deadlocks)
	}
	if n := rt.Locks().LockCount(); n != 0 {
		t.Fatalf("leaked %d locks", n)
	}
}

// TestSameFamilySiblingWaitIsNotDeadlock: two concurrent children of
// one top-level action contending on one object must NOT be flagged —
// the first child's commit passes the lock to the parent and the second
// child proceeds.
func TestSameFamilySiblingWaitIsNotDeadlock(t *testing.T) {
	rt := action.NewRuntime()
	o := newReg("o", nil)

	top, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	c1, err := top.Begin()
	if err != nil {
		t.Fatal(err)
	}
	o.write(t, c1, colour.None, "c1")

	done := make(chan error, 1)
	go func() {
		c2, err := top.Begin()
		if err != nil {
			done <- err
			return
		}
		if err := o.writeErr(c2, colour.None, "c2"); err != nil {
			done <- err
			return
		}
		done <- c2.Commit()
	}()

	time.Sleep(20 * time.Millisecond) // let c2 block
	if err := c1.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("sibling wait resolved with error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sibling wait never resolved")
	}
	if err := top.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := o.get(); got != "c2" {
		t.Fatalf("o = %q", got)
	}
}
