//go:build !invariants

package action

import "mca/internal/colour"

// assertHeirHoldsColour is a no-op without the invariants build tag.
func assertHeirHoldsColour(committing, heir *Action, c colour.Colour) {}
