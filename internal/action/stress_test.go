package action_test

import (
	"math/rand"
	"sync"
	"testing"

	"mca/internal/action"
	"mca/internal/colour"
)

// TestActionTreeStorm hammers one runtime with concurrent goroutines
// building random trees (nested, coloured, independent), committing and
// aborting at random, with shared objects in the mix. Invariants: no
// unexpected errors, the runtime drains (no leaked actions), and all
// locks are released.
func TestActionTreeStorm(t *testing.T) {
	rt := action.NewRuntime()
	shared := make([]*reg, 8)
	for i := range shared {
		shared[i] = newReg("s", nil)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*64)

	var build func(rng *rand.Rand, parent *action.Action, depth int) error
	build = func(rng *rand.Rand, parent *action.Action, depth int) error {
		var (
			a   *action.Action
			err error
		)
		switch rng.Intn(3) {
		case 0:
			a, err = parent.Begin()
		case 1:
			a, err = parent.Begin(action.WithExtraColours(colour.Fresh()))
		default:
			a, err = parent.Begin(action.WithColours(colour.Fresh())) // independent
		}
		if err != nil {
			return err
		}

		// Some writes: use TryLock-style short ops via writeErr;
		// conflicts/deadlocks surface as errors we translate to aborts.
		for i := 0; i < rng.Intn(3); i++ {
			r := shared[rng.Intn(len(shared))]
			if err := r.writeErr(a, colour.None, "w"); err != nil {
				_ = a.Abort()
				return nil // clean abort on contention
			}
		}
		if depth < 2 {
			for i := 0; i < rng.Intn(3); i++ {
				if err := build(rng, a, depth+1); err != nil {
					_ = a.Abort()
					return err
				}
			}
		}
		if rng.Intn(2) == 0 {
			return a.Abort()
		}
		if err := a.Commit(); err != nil {
			// Active independent children are legal at commit; other
			// errors are not expected.
			_ = a.Abort()
		}
		return nil
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			for i := 0; i < 40; i++ {
				top, err := rt.Begin()
				if err != nil {
					errs <- err
					return
				}
				if err := build(rng, top, 0); err != nil {
					errs <- err
					_ = top.Abort()
					continue
				}
				if rng.Intn(2) == 0 {
					_ = top.Abort()
				} else if err := top.Commit(); err != nil {
					_ = top.Abort()
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("storm worker: %v", err)
	}

	if n := rt.ActiveActions(); n != 0 {
		t.Fatalf("leaked %d actions after the storm", n)
	}
	if n := rt.Locks().LockCount(); n != 0 {
		t.Fatalf("leaked %d locks after the storm", n)
	}
}
