package action

import "mca/internal/metrics"

// structureKind classifies an action by how its colour set relates to
// its parent's — the paper's structural vocabulary (§3, §5.3–§5.6)
// reduced to what is decidable at Begin time.
type structureKind uint8

const (
	kindTop         structureKind = iota // no parent
	kindNested                           // inherits the parent's heritable set unchanged
	kindIndependent                      // colour-disjoint from the parent: survives its abort
	kindRecoloured                       // overlapping but different set (serializing/glued/companion schemes)
	numKinds
)

func (k structureKind) String() string {
	switch k {
	case kindTop:
		return "top"
	case kindNested:
		return "nested"
	case kindIndependent:
		return "independent"
	case kindRecoloured:
		return "recoloured"
	default:
		return "unknown"
	}
}

// Action-lifecycle telemetry, exported under mca_action_*. Begin and
// Commit/Abort already allocate and take several mutexes, so the cost
// of one striped-counter add per event is noise; handles are resolved
// per kind at init so the hot path never touches a label map.
var (
	beginsByKind  [numKinds]*metrics.Counter
	commitsByKind [numKinds]*metrics.Counter
	abortsByKind  [numKinds]*metrics.Counter

	// recordTransfers counts undo records adopted by heirs at commit
	// (colour-inheritance transfers, §5.2 commit rule).
	recordTransfers = metrics.Default().Counter(
		"mca_action_record_transfers_total",
		"Recovery records transferred to a colour heir at commit.")

	// depthHist observes each new action's nesting depth (top level = 1).
	depthHist = metrics.Default().Histogram(
		"mca_action_depth",
		"Nesting depth of actions at Begin (top level = 1).")

	// activeActions tracks currently registered actions across all
	// runtimes in the process.
	activeActions = metrics.Default().Gauge(
		"mca_action_active",
		"Actions currently active, across all runtimes.")
)

func init() {
	r := metrics.Default()
	begins := r.CounterVec("mca_action_begins_total",
		"Actions begun, by structure kind.", "kind")
	completions := r.CounterVec("mca_action_completions_total",
		"Actions completed, by structure kind and outcome.", "kind", "outcome")
	for k := kindTop; k < numKinds; k++ {
		beginsByKind[k] = begins.With(k.String())
		commitsByKind[k] = completions.With(k.String(), "committed")
		abortsByKind[k] = completions.With(k.String(), "aborted")
	}
}
