// Go runtime statistics as mca_runtime_* gather-time collectors: no
// background goroutine, no sampling loop — every scrape reads the
// runtime's own counters (runtime/metrics) at that instant. The
// histograms (GC pauses, scheduler latency) convert the runtime's
// float64-seconds buckets to the nanosecond HistogramSnapshot shape the
// exposition and Quantile already speak.
package metrics

import (
	"math"
	"runtime"
	runtimemetrics "runtime/metrics"
	"sync"
)

// Runtime metric names. The mca_runtime_ prefix is carved out in the
// metricsname analyzer: these are the only families internal/metrics
// may register outside its own mca_metrics_ namespace.
const (
	runtimeGoroutines   = "mca_runtime_goroutines"
	runtimeHeapBytes    = "mca_runtime_heap_bytes"
	runtimeGCPauses     = "mca_runtime_gc_pause_ns"
	runtimeSchedLatency = "mca_runtime_sched_latency_ns"
)

// runtime/metrics sample names backing the collectors.
const (
	sampleHeapBytes    = "/memory/classes/heap/objects:bytes"
	sampleGCPauses     = "/sched/pauses/total/gc:seconds"
	sampleSchedLatency = "/sched/latencies:seconds"
)

// RegisterRuntime registers the mca_runtime_* collectors on r. Like
// every registration it panics on a duplicate name, so call it at most
// once per registry; RegisterRuntimeDefault guards the common
// process-global case.
func RegisterRuntime(r *Registry) {
	r.GaugeFunc(runtimeGoroutines,
		"Live goroutines at gather time.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc(runtimeHeapBytes,
		"Bytes of live heap objects at gather time.",
		func() float64 { return readRuntimeCounter(sampleHeapBytes) })
	r.register(runtimeGCPauses,
		"Cumulative stop-the-world GC pause durations, nanoseconds.",
		KindHistogram, func() []Sample {
			return []Sample{{Hist: readRuntimeHistogram(sampleGCPauses)}}
		})
	r.register(runtimeSchedLatency,
		"Cumulative goroutine scheduling latency (runnable to running), nanoseconds.",
		KindHistogram, func() []Sample {
			return []Sample{{Hist: readRuntimeHistogram(sampleSchedLatency)}}
		})
}

var runtimeOnce sync.Once

// RegisterRuntimeDefault registers the runtime collectors on the
// process-global registry, once; later calls are no-ops. The node debug
// server calls it so every /metrics scrape carries runtime health.
func RegisterRuntimeDefault() {
	runtimeOnce.Do(func() { RegisterRuntime(def) })
}

// readRuntimeCounter reads one scalar runtime/metrics sample.
func readRuntimeCounter(name string) float64 {
	s := []runtimemetrics.Sample{{Name: name}}
	runtimemetrics.Read(s)
	switch s[0].Value.Kind() {
	case runtimemetrics.KindUint64:
		return float64(s[0].Value.Uint64())
	case runtimemetrics.KindFloat64:
		return s[0].Value.Float64()
	default:
		return 0
	}
}

// readRuntimeHistogram reads one runtime/metrics Float64Histogram and
// converts it: bucket boundaries from seconds to nanoseconds, counts
// copied, Sum approximated from bucket midpoints (the runtime does not
// track an exact sum). The +Inf tail, if populated, lands in Count but
// no finite bucket — exactly how the exposition's +Inf line and the
// Quantile clamp treat overflow.
func readRuntimeHistogram(name string) *HistogramSnapshot {
	s := []runtimemetrics.Sample{{Name: name}}
	runtimemetrics.Read(s)
	if s[0].Value.Kind() != runtimemetrics.KindFloat64Histogram {
		return &HistogramSnapshot{}
	}
	h := s[0].Value.Float64Histogram()
	out := &HistogramSnapshot{}
	for i, n := range h.Counts {
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		out.Count += n
		if math.IsInf(hi, 1) {
			if n > 0 && !math.IsInf(lo, -1) {
				out.Sum += n * uint64(lo*1e9)
			}
			continue
		}
		out.Bounds = append(out.Bounds, uint64(hi*1e9))
		out.Buckets = append(out.Buckets, n)
		if n > 0 {
			mid := hi
			if !math.IsInf(lo, -1) {
				mid = (lo + hi) / 2
			}
			out.Sum += n * uint64(mid*1e9)
		}
	}
	return out
}
