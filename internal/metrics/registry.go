package metrics

import (
	"fmt"
	"sort"
	"sync"
)

// Kind classifies a metric family for exposition.
type Kind int

// Metric family kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// String renders the kind as the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Sample is one exposition sample of a family: a label set (alternating
// name, value pairs, possibly empty) and either a scalar value or a
// histogram snapshot.
type Sample struct {
	Labels []string
	Value  float64
	Hist   *HistogramSnapshot
}

// Family is the gathered state of one registered metric family.
type Family struct {
	Name    string
	Help    string
	Kind    Kind
	Samples []Sample
}

// family is one registration: a named collector.
type family struct {
	name    string
	help    string
	kind    Kind
	collect func() []Sample
}

// Registry holds metric families. Registration happens at package init
// time of instrumented code (it panics on invalid or duplicate names —
// both are programming errors); gathering happens on demand from the
// exposition handler, tests, or the experiment harness.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// def is the process-global registry every layer of the runtime
// registers into; see Default.
var def = NewRegistry()

// Default returns the process-global registry.
func Default() *Registry { return def }

// validName reports whether name is a legal metric or label name:
// [a-zA-Z_][a-zA-Z0-9_]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r == '_', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (r *Registry) register(name, help string, kind Kind, collect func() []Sample) {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric name %q", name))
	}
	f := &family{name: name, help: help, kind: kind, collect: collect}
	r.byName[name] = f
	r.families = append(r.families, f)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := newCounter()
	r.register(name, help, KindCounter, func() []Sample {
		return []Sample{{Value: float64(c.Value())}}
	})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, KindGauge, func() []Sample {
		return []Sample{{Value: float64(g.Value())}}
	})
	return g
}

// Histogram registers and returns a new histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	r.register(name, help, KindHistogram, func() []Sample {
		s := h.Snapshot()
		return []Sample{{Hist: &s}}
	})
	return h
}

// LogLinearHistogram registers and returns a new log-linear histogram:
// 16 sub-buckets per power of two, for families whose tail quantiles
// feed SLO decisions and need better than factor-of-2 resolution.
func (r *Registry) LogLinearHistogram(name, help string) *LogLinearHistogram {
	h := &LogLinearHistogram{}
	r.register(name, help, KindHistogram, func() []Sample {
		s := h.Snapshot()
		return []Sample{{Hist: &s}}
	})
	return h
}

// CounterFunc registers a counter whose value is produced by fn at
// gather time: the zero-hot-cost choice for subsystems that already
// count under their own synchronization.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, KindCounter, func() []Sample {
		return []Sample{{Value: fn()}}
	})
}

// GaugeFunc registers a gauge whose value is produced by fn at gather
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, KindGauge, func() []Sample {
		return []Sample{{Value: fn()}}
	})
}

// Emit delivers one labelled sample from a gather-time collector; the
// label values align positionally with the registered label names.
type Emit func(value float64, labelValues ...string)

// CounterVecFunc registers a labelled counter family whose samples are
// produced at gather time by collect calling emit once per label tuple.
func (r *Registry) CounterVecFunc(name, help string, labelNames []string, collect func(emit Emit)) {
	r.registerVecFunc(name, help, KindCounter, labelNames, collect)
}

// GaugeVecFunc registers a labelled gauge family whose samples are
// produced at gather time by collect calling emit once per label tuple.
func (r *Registry) GaugeVecFunc(name, help string, labelNames []string, collect func(emit Emit)) {
	r.registerVecFunc(name, help, KindGauge, labelNames, collect)
}

func (r *Registry) registerVecFunc(name, help string, kind Kind, labelNames []string, collect func(emit Emit)) {
	for _, ln := range labelNames {
		if !validName(ln) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", ln, name))
		}
	}
	r.register(name, help, kind, func() []Sample {
		var samples []Sample
		collect(func(v float64, labelValues ...string) {
			if len(labelValues) != len(labelNames) {
				panic(fmt.Sprintf("metrics: %q emitted %d label values, want %d", name, len(labelValues), len(labelNames)))
			}
			labels := make([]string, 0, 2*len(labelNames))
			for i, ln := range labelNames {
				labels = append(labels, ln, labelValues[i])
			}
			samples = append(samples, Sample{Labels: labels, Value: v})
		})
		return samples
	})
}

// vec is the shared child table behind CounterVec, GaugeVec and
// HistogramVec: label tuples resolve to children once, at registration
// time, so the hot path updates a plain *Counter/*Gauge/*Histogram.
type vec[T any] struct {
	labelNames []string

	mu       sync.Mutex
	children []*vecChild[T]
}

type vecChild[T any] struct {
	labels []string // alternating name, value
	metric *T
}

// with resolves (or creates) the child for the given label values.
func (v *vec[T]) with(name string, mk func() *T, values []string) *T {
	if len(values) != len(v.labelNames) {
		panic(fmt.Sprintf("metrics: %q: got %d label values, want %d", name, len(values), len(v.labelNames)))
	}
	v.mu.Lock()
	defer v.mu.Unlock()
outer:
	for _, c := range v.children {
		for i := range values {
			if c.labels[2*i+1] != values[i] {
				continue outer
			}
		}
		return c.metric
	}
	labels := make([]string, 0, 2*len(values))
	for i, ln := range v.labelNames {
		labels = append(labels, ln, values[i])
	}
	c := &vecChild[T]{labels: labels, metric: mk()}
	v.children = append(v.children, c)
	return c.metric
}

func (v *vec[T]) snapshot() []*vecChild[T] {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]*vecChild[T], len(v.children))
	copy(out, v.children)
	return out
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct {
	name string
	vec  vec[Counter]
}

// With returns the counter for the given label values (aligned with the
// registered label names), creating it on first use. Resolve once at
// setup; the returned counter is the hot-path handle.
func (cv *CounterVec) With(labelValues ...string) *Counter {
	return cv.vec.with(cv.name, newCounter, labelValues)
}

// CounterVec registers and returns a labelled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	cv := &CounterVec{name: name, vec: vec[Counter]{labelNames: labelNames}}
	for _, ln := range labelNames {
		if !validName(ln) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", ln, name))
		}
	}
	r.register(name, help, KindCounter, func() []Sample {
		children := cv.vec.snapshot()
		samples := make([]Sample, 0, len(children))
		for _, c := range children {
			samples = append(samples, Sample{Labels: c.labels, Value: float64(c.metric.Value())})
		}
		return samples
	})
	return cv
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct {
	name string
	vec  vec[Gauge]
}

// With returns the gauge for the given label values, creating it on
// first use.
func (gv *GaugeVec) With(labelValues ...string) *Gauge {
	return gv.vec.with(gv.name, func() *Gauge { return &Gauge{} }, labelValues)
}

// GaugeVec registers and returns a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	gv := &GaugeVec{name: name, vec: vec[Gauge]{labelNames: labelNames}}
	for _, ln := range labelNames {
		if !validName(ln) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", ln, name))
		}
	}
	r.register(name, help, KindGauge, func() []Sample {
		children := gv.vec.snapshot()
		samples := make([]Sample, 0, len(children))
		for _, c := range children {
			samples = append(samples, Sample{Labels: c.labels, Value: float64(c.metric.Value())})
		}
		return samples
	})
	return gv
}

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct {
	name string
	vec  vec[Histogram]
}

// With returns the histogram for the given label values, creating it on
// first use.
func (hv *HistogramVec) With(labelValues ...string) *Histogram {
	return hv.vec.with(hv.name, func() *Histogram { return &Histogram{} }, labelValues)
}

// HistogramVec registers and returns a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, labelNames ...string) *HistogramVec {
	hv := &HistogramVec{name: name, vec: vec[Histogram]{labelNames: labelNames}}
	for _, ln := range labelNames {
		if !validName(ln) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", ln, name))
		}
	}
	r.register(name, help, KindHistogram, func() []Sample {
		children := hv.vec.snapshot()
		samples := make([]Sample, 0, len(children))
		for _, c := range children {
			s := c.metric.Snapshot()
			samples = append(samples, Sample{Labels: c.labels, Hist: &s})
		}
		return samples
	})
	return hv
}

// Gather collects every family's current samples, sorted by family
// name. Collector functions run outside the registry mutex, so they may
// take subsystem locks freely.
func (r *Registry) Gather() []Family {
	r.mu.Lock()
	families := make([]*family, len(r.families))
	copy(families, r.families)
	r.mu.Unlock()

	out := make([]Family, 0, len(families))
	for _, f := range families {
		out = append(out, Family{Name: f.name, Help: f.help, Kind: f.kind, Samples: f.collect()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Find returns the gathered family with the given name, for tests and
// the experiment harness.
func (r *Registry) Find(name string) (Family, bool) {
	for _, f := range r.Gather() {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}
