package metrics

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	c := newCounter()
	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("Value = %d, want %d", got, goroutines*perG)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 4 {
		t.Fatalf("Value = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0) // bit length 0 → bucket 0
	h.Observe(1) // bit length 1
	h.Observe(2) // bit length 2
	h.Observe(3) // bit length 2
	h.Observe(1024)
	h.Observe(math.MaxUint64) // clamps into last bucket
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("Count = %d, want 6", s.Count)
	}
	wantSum := uint64(0 + 1 + 2 + 3 + 1024)
	wantSum += math.MaxUint64 // wraps; Sum is modular
	if s.Sum != wantSum {
		t.Fatalf("Sum = %d, want %d", s.Sum, wantSum)
	}
	if s.Buckets[0] != 1 || s.Buckets[1] != 1 || s.Buckets[2] != 2 {
		t.Fatalf("low buckets = %v", s.Buckets[:3])
	}
	if s.Buckets[11] != 1 { // 1024 has bit length 11
		t.Fatalf("bucket 11 = %d, want 1", s.Buckets[11])
	}
	if s.Buckets[histBuckets-1] != 1 {
		t.Fatalf("last bucket = %d, want 1 (clamped)", s.Buckets[histBuckets-1])
	}
	h.ObserveDuration(-time.Second) // negative clamps to zero
	if got := h.Count(); got != 7 {
		t.Fatalf("Count after negative duration = %d, want 7", got)
	}
}

func TestBucketBound(t *testing.T) {
	for i, want := range []uint64{1, 2, 4, 8, 16} {
		if got := BucketBound(i); got != want {
			t.Fatalf("BucketBound(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("mca_test_x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("mca_test_x", "")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	for _, bad := range []string{"", "1abc", "a-b", "a b", "a.b"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q did not panic", bad)
				}
			}()
			NewRegistry().Counter(bad, "")
		}()
	}
}

func TestVecResolvesSameChild(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("mca_test_ops_total", "ops", "mode", "outcome")
	a := cv.With("read", "ok")
	b := cv.With("read", "ok")
	if a != b {
		t.Fatal("same label tuple resolved to different counters")
	}
	c := cv.With("write", "ok")
	if a == c {
		t.Fatal("distinct label tuples resolved to the same counter")
	}
	a.Add(3)
	c.Inc()
	fam, ok := r.Find("mca_test_ops_total")
	if !ok || len(fam.Samples) != 2 {
		t.Fatalf("Find = %+v, %v", fam, ok)
	}
}

func TestVecWrongArityPanics(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("mca_test_v_total", "", "mode")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	cv.With("a", "b")
}

func TestGatherSortedAndFuncs(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("mca_test_b", "", func() float64 { return 2 })
	r.CounterFunc("mca_test_a", "", func() float64 { return 1 })
	r.CounterVecFunc("mca_test_c", "", []string{"shard"}, func(emit Emit) {
		emit(5, "0")
		emit(6, "1")
	})
	fams := r.Gather()
	if len(fams) != 3 {
		t.Fatalf("got %d families", len(fams))
	}
	for i, want := range []string{"mca_test_a", "mca_test_b", "mca_test_c"} {
		if fams[i].Name != want {
			t.Fatalf("family %d = %q, want %q", i, fams[i].Name, want)
		}
	}
	if got := fams[2].Samples; len(got) != 2 || got[0].Value != 5 || got[1].Value != 6 {
		t.Fatalf("vec-func samples = %+v", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("mca_test_total", "things that happened").Add(41)
	gv := r.GaugeVec("mca_test_depth", "", "shard")
	gv.With("3").Set(9)
	h := r.Histogram("mca_test_wait_ns", "")
	h.Observe(5) // bucket 3, bound 8
	h.Observe(1) // bucket 1, bound 2

	var sb strings.Builder
	WritePrometheus(&sb, r)
	out := sb.String()
	for _, want := range []string{
		"# TYPE mca_test_total counter",
		"mca_test_total 41",
		"# HELP mca_test_total things that happened",
		`mca_test_depth{shard="3"} 9`,
		`mca_test_wait_ns_bucket{le="2"} 1`,
		`mca_test_wait_ns_bucket{le="8"} 2`,
		`mca_test_wait_ns_bucket{le="+Inf"} 2`,
		"mca_test_wait_ns_sum 6",
		"mca_test_wait_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSONIsValidJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("mca_test_total", "").Add(3)
	r.CounterVec("mca_test_ops", "", "mode").With("read").Inc()
	r.Histogram("mca_test_ns", "").Observe(100)

	var sb strings.Builder
	WriteJSON(&sb, r)
	var decoded map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if v, ok := decoded["mca_test_total"].(float64); !ok || v != 3 {
		t.Fatalf("mca_test_total = %v", decoded["mca_test_total"])
	}
	if _, ok := decoded["mca_test_ops{mode=read}"]; !ok {
		t.Fatalf("missing labelled key, got %v", decoded)
	}
	hist, ok := decoded["mca_test_ns"].(map[string]any)
	if !ok || hist["count"].(float64) != 1 {
		t.Fatalf("mca_test_ns = %v", decoded["mca_test_ns"])
	}
}

func TestHandlerFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("mca_test_total", "").Inc()
	h := Handler(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "mca_test_total 1") {
		t.Fatalf("prometheus body: %s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var decoded map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
}

func TestDefaultRegistryIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default() not stable")
	}
}
