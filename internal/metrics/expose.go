package metrics

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Handler returns an http.Handler exposing the registry: Prometheus
// text format by default, expvar-style JSON with ?format=json. Serving
// it is opt-in (see node.WithDebugAddr); collection happens regardless.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			WriteJSON(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, r)
	})
}

// escapeLabelValue escapes a label value per the Prometheus text format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// writeLabels renders {a="x",b="y"} from alternating name, value pairs,
// with extra appended last (used for the histogram le label). Writes
// nothing when there are no labels at all.
func writeLabels(w io.Writer, labels []string, extra ...string) {
	if len(labels) == 0 && len(extra) == 0 {
		return
	}
	io.WriteString(w, "{")
	sep := ""
	for i := 0; i+1 < len(labels); i += 2 {
		fmt.Fprintf(w, `%s%s="%s"`, sep, labels[i], escapeLabelValue(labels[i+1]))
		sep = ","
	}
	for i := 0; i+1 < len(extra); i += 2 {
		fmt.Fprintf(w, `%s%s="%s"`, sep, extra[i], escapeLabelValue(extra[i+1]))
		sep = ","
	}
	io.WriteString(w, "}")
}

// formatValue renders a float the way Prometheus clients do: integers
// without a decimal point.
func formatValue(v float64) string {
	if v == float64(uint64(v)) {
		return strconv.FormatUint(uint64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the registry's current state in the Prometheus
// text exposition format (version 0.0.4).
func WritePrometheus(w io.Writer, r *Registry) {
	for _, f := range r.Gather() {
		if f.Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.Name, strings.ReplaceAll(f.Help, "\n", " "))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, s := range f.Samples {
			if s.Hist == nil {
				io.WriteString(w, f.Name)
				writeLabels(w, s.Labels)
				fmt.Fprintf(w, " %s\n", formatValue(s.Value))
				continue
			}
			// Cumulative buckets, trimmed after the last non-empty one
			// (the +Inf bucket always carries the full count).
			last := -1
			for i, n := range s.Hist.Buckets {
				if n != 0 {
					last = i
				}
			}
			var cum uint64
			for i := 0; i <= last; i++ {
				cum += s.Hist.Buckets[i]
				fmt.Fprintf(w, "%s_bucket", f.Name)
				writeLabels(w, s.Labels, "le", strconv.FormatUint(s.Hist.Bounds[i], 10))
				fmt.Fprintf(w, " %d", cum)
				// OpenMetrics exemplar syntax: the bucket's retained
				// (value, trace) pair, linking it to a concrete
				// transaction in the trace tooling.
				if i < len(s.Hist.Exemplars) && s.Hist.Exemplars[i] != nil {
					ex := s.Hist.Exemplars[i]
					fmt.Fprintf(w, ` # {trace_id="%016x"} %d`, ex.TraceID, ex.Value)
				}
				io.WriteString(w, "\n")
			}
			fmt.Fprintf(w, "%s_bucket", f.Name)
			writeLabels(w, s.Labels, "le", "+Inf")
			fmt.Fprintf(w, " %d\n", s.Hist.Count)
			fmt.Fprintf(w, "%s_sum", f.Name)
			writeLabels(w, s.Labels)
			fmt.Fprintf(w, " %d\n", s.Hist.Sum)
			fmt.Fprintf(w, "%s_count", f.Name)
			writeLabels(w, s.Labels)
			fmt.Fprintf(w, " %d\n", s.Hist.Count)
		}
	}
}

// jsonEscape writes s as a JSON string literal.
func jsonEscape(w io.Writer, s string) {
	b := make([]byte, 0, len(s)+2)
	b = strconv.AppendQuote(b, s)
	w.Write(b)
}

// WriteJSON writes the registry's current state as a single JSON object
// in expvar style: one key per sample ("name" or "name{a=x,b=y}"),
// scalar values for counters and gauges, {count, sum, buckets} objects
// for histograms. Keys appear in sorted family order, so output is
// deterministic for a fixed state.
func WriteJSON(w io.Writer, r *Registry) {
	io.WriteString(w, "{")
	sep := ""
	for _, f := range r.Gather() {
		for _, s := range f.Samples {
			io.WriteString(w, sep)
			sep = ",\n"
			key := f.Name
			if len(s.Labels) > 0 {
				var sb strings.Builder
				sb.WriteString(f.Name)
				sb.WriteString("{")
				for i := 0; i+1 < len(s.Labels); i += 2 {
					if i > 0 {
						sb.WriteString(",")
					}
					sb.WriteString(s.Labels[i])
					sb.WriteString("=")
					sb.WriteString(s.Labels[i+1])
				}
				sb.WriteString("}")
				key = sb.String()
			}
			jsonEscape(w, key)
			io.WriteString(w, ": ")
			if s.Hist == nil {
				io.WriteString(w, formatValue(s.Value))
				continue
			}
			fmt.Fprintf(w, `{"count": %d, "sum": %d, "buckets": {`, s.Hist.Count, s.Hist.Sum)
			bsep := ""
			for i, n := range s.Hist.Buckets {
				if n == 0 {
					continue
				}
				fmt.Fprintf(w, `%s"%d": %d`, bsep, s.Hist.Bounds[i], n)
				bsep = ", "
			}
			io.WriteString(w, "}")
			if len(s.Hist.Exemplars) > 0 {
				io.WriteString(w, `, "exemplars": {`)
				esep := ""
				for i, ex := range s.Hist.Exemplars {
					if ex == nil {
						continue
					}
					fmt.Fprintf(w, `%s"%d": {"value": %d, "trace_id": "%016x"}`,
						esep, s.Hist.Bounds[i], ex.Value, ex.TraceID)
					esep = ", "
				}
				io.WriteString(w, "}")
			}
			io.WriteString(w, "}")
		}
	}
	io.WriteString(w, "}\n")
}
