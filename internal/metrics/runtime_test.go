package metrics

import (
	"strings"
	"testing"
)

func TestRuntimeCollectors(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	var sb strings.Builder
	WritePrometheus(&sb, r)
	out := sb.String()
	for _, name := range []string{
		runtimeGoroutines, runtimeHeapBytes, runtimeGCPauses, runtimeSchedLatency,
	} {
		if !strings.Contains(out, name) {
			t.Fatalf("exposition missing %s:\n%s", name, out)
		}
	}
	// Gather-time reads: goroutines and heap must be live, non-zero.
	for _, f := range r.Gather() {
		switch f.Name {
		case runtimeGoroutines, runtimeHeapBytes:
			if len(f.Samples) != 1 || f.Samples[0].Value <= 0 {
				t.Fatalf("%s = %+v, want one positive sample", f.Name, f.Samples)
			}
		case runtimeGCPauses, runtimeSchedLatency:
			if len(f.Samples) != 1 || f.Samples[0].Hist == nil {
				t.Fatalf("%s = %+v, want one histogram sample", f.Name, f.Samples)
			}
			h := f.Samples[0].Hist
			if len(h.Bounds) != len(h.Buckets) {
				t.Fatalf("%s bounds/buckets mismatch: %d vs %d", f.Name, len(h.Bounds), len(h.Buckets))
			}
			for i := 1; i < len(h.Bounds); i++ {
				if h.Bounds[i] <= h.Bounds[i-1] {
					t.Fatalf("%s bounds not ascending at %d: %v", f.Name, i, h.Bounds[:i+1])
				}
			}
		}
	}
	// Registering on the default registry twice must not panic.
	RegisterRuntimeDefault()
	RegisterRuntimeDefault()
}
