package metrics

import (
	"math"
	"sort"
	"testing"
	"time"
)

// exactQuantile computes the q-quantile of vals by sorting (nearest
// rank), the oracle the interpolated estimates are judged against.
func exactQuantile(vals []uint64, q float64) float64 {
	s := make([]uint64, len(vals))
	copy(s, vals)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return float64(s[idx])
}

func TestQuantileEmpty(t *testing.T) {
	var h LogLinearHistogram
	s := h.Snapshot()
	if got := s.Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	var zero HistogramSnapshot
	if got := zero.Quantile(0.5); got != 0 {
		t.Fatalf("zero-value snapshot Quantile = %v, want 0", got)
	}
}

func TestQuantileOneBucket(t *testing.T) {
	// All mass in one log-linear bucket: the estimate interpolates
	// inside it and must stay within the bucket's bounds.
	var h LogLinearHistogram
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	s := h.Snapshot()
	i := llIndex(1000)
	lo, hi := float64(llBounds[i-1]), float64(llBounds[i])
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := s.Quantile(q)
		if got < lo || got > hi {
			t.Fatalf("Quantile(%v) = %v outside bucket [%v, %v)", q, got, lo, hi)
		}
	}
	// Out-of-range q clamps instead of panicking.
	if got := s.Quantile(-1); got != s.Quantile(0) {
		t.Fatalf("Quantile(-1) = %v, want %v", got, s.Quantile(0))
	}
	if got := s.Quantile(2); got != s.Quantile(1) {
		t.Fatalf("Quantile(2) = %v, want %v", got, s.Quantile(1))
	}
}

func TestQuantileUniformDistribution(t *testing.T) {
	// Uniform 1..100k: log-linear interpolation must land within 1/16
	// (one sub-bucket width) of the exact percentile; the power-of-two
	// histogram is allowed its factor-of-2 error but no more.
	var ll LogLinearHistogram
	var p2 Histogram
	var vals []uint64
	for v := uint64(1); v <= 100000; v++ {
		vals = append(vals, v)
		ll.Observe(v)
		p2.Observe(v)
	}
	sll, sp2 := ll.Snapshot(), p2.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := exactQuantile(vals, q)
		got := sll.Quantile(q)
		if rel := math.Abs(got-exact) / exact; rel > 1.0/subBuckets {
			t.Errorf("log-linear Quantile(%v) = %v, exact %v (rel err %.3f)", q, got, exact, rel)
		}
		got2 := sp2.Quantile(q)
		if got2 < exact/2 || got2 > exact*2 {
			t.Errorf("pow2 Quantile(%v) = %v, exact %v (outside 2x)", q, got2, exact)
		}
	}
}

func TestQuantileBimodalTail(t *testing.T) {
	// 99 fast ops at ~1ms and 1 slow at ~1s: p50 must report the fast
	// mode and p999 the slow one — the case power-of-two buckets blur.
	var h LogLinearHistogram
	for i := 0; i < 990; i++ {
		h.ObserveDuration(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.ObserveDuration(time.Second)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.50); p50 > 1.2e6 {
		t.Fatalf("p50 = %v ns, want ~1ms", p50)
	}
	if p999 := s.Quantile(0.999); p999 < 0.9e9 || p999 > 1.1e9 {
		t.Fatalf("p999 = %v ns, want ~1s", p999)
	}
}

func TestLogLinearBucketLayout(t *testing.T) {
	// Bounds are strictly ascending and every value lands in the
	// bucket whose half-open range contains it.
	for i := 1; i < llBuckets; i++ {
		if llBounds[i] <= llBounds[i-1] {
			t.Fatalf("bounds not ascending at %d: %d <= %d", i, llBounds[i], llBounds[i-1])
		}
	}
	check := func(v uint64) {
		i := llIndex(v)
		lo := uint64(0)
		if i > 0 {
			lo = llBounds[i-1]
		}
		if v < lo || v >= llBounds[i] {
			t.Fatalf("value %d landed in bucket %d [%d, %d)", v, i, lo, llBounds[i])
		}
	}
	for v := uint64(0); v < 4096; v++ {
		check(v)
	}
	for _, v := range []uint64{1 << 20, 1<<20 + 12345, 1 << 40, 1<<47 + 999} {
		check(v)
	}
	// Values past the top era clamp into the last bucket.
	if got := llIndex(math.MaxUint64); got != llBuckets-1 {
		t.Fatalf("llIndex(max) = %d, want %d", got, llBuckets-1)
	}
	// Relative bucket width is at most 1/16 above the exact range.
	for i := subBuckets; i < llBuckets; i++ {
		lo, hi := llBounds[i-1], llBounds[i]
		if float64(hi-lo)/float64(lo) > 1.0/subBuckets+1e-9 {
			t.Fatalf("bucket %d width %d too wide for lower bound %d", i, hi-lo, lo)
		}
	}
}

func TestLogLinearHistogramCountSum(t *testing.T) {
	var h LogLinearHistogram
	h.Observe(3)
	h.Observe(300)
	h.ObserveDuration(-time.Second) // clamps to 0
	if got := h.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	if got := h.Sum(); got != 303 {
		t.Fatalf("Sum = %d, want 303", got)
	}
}

func TestRegistryLogLinearHistogramExposes(t *testing.T) {
	r := NewRegistry()
	h := r.LogLinearHistogram("mca_test_open_latency_ns", "")
	h.Observe(100)
	fam, ok := r.Find("mca_test_open_latency_ns")
	if !ok || fam.Kind != KindHistogram || len(fam.Samples) != 1 {
		t.Fatalf("Find = %+v, %v", fam, ok)
	}
	s := fam.Samples[0].Hist
	if s.Count != 1 || s.Sum != 100 {
		t.Fatalf("snapshot = %+v", s)
	}
	if len(s.Bounds) != len(s.Buckets) {
		t.Fatalf("bounds/buckets length mismatch: %d vs %d", len(s.Bounds), len(s.Buckets))
	}
}
