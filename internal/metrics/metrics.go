// Package metrics is a dependency-free, low-overhead telemetry core for
// the action runtime: counters, gauges and fixed-bucket histograms
// registered in a Registry and exposed in Prometheus text or
// expvar-style JSON form (see Handler).
//
// Design constraints, in order:
//
//  1. The hot path must stay hot. Updating a metric is one atomic
//     add — no locks, no maps, no allocation. Counters are striped
//     across padded cache lines so concurrent writers on different
//     cores do not serialize on one line, and label lookup happens at
//     registration time, never per update (a CounterVec resolves its
//     label tuple to a *Counter once; instrumented code keeps the
//     pointer).
//  2. Reading is rare and may be slow. Gather walks the registry under
//     its mutex, sums counter stripes, snapshots histogram buckets and
//     runs gather-time collector functions (for subsystems like the
//     lock manager that keep per-shard statistics under mutexes they
//     already hold on the hot path — the cheapest "sharded counter"
//     there is).
//  3. Nothing here imports anything above the standard library, so any
//     package in the module can be instrumented without cycles.
//
// Metric names follow the convention mca_<pkg>_<name> (enforced by the
// metricsname analyzer in cmd/mcalint); duration histograms record
// nanoseconds in power-of-two buckets and end in _ns.
package metrics

import (
	"math/bits"
	"math/rand/v2"
	"runtime"
	"sync/atomic"
	"time"
)

// cacheLine is the assumed cache-line size for stripe padding (64 bytes
// on every platform this repo targets; a wrong guess costs false
// sharing, not correctness).
const cacheLine = 64

// stripe is one padded counter cell.
type stripe struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// stripeCount picks how many cells a Counter spreads over: enough that
// concurrent incrementers rarely collide, bounded so a process with
// thousands of counters doesn't drown in padding. Always a power of
// two.
func stripeCount() int {
	n := runtime.GOMAXPROCS(0)
	if n < 4 {
		n = 4
	}
	if n > 64 {
		n = 64
	}
	// Round up to a power of two.
	return 1 << bits.Len(uint(n-1))
}

// A Counter is a monotonically increasing value, striped across padded
// cache lines. Safe for concurrent use; Inc/Add never allocate.
type Counter struct {
	stripes []stripe
	mask    uint64
}

func newCounter() *Counter {
	n := stripeCount()
	return &Counter{stripes: make([]stripe, n), mask: uint64(n - 1)}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta. The stripe is picked by the runtime's per-core fast
// random source: statistically, concurrent writers spread over distinct
// cache lines instead of serializing on one.
func (c *Counter) Add(delta uint64) {
	c.stripes[rand.Uint64()&c.mask].v.Add(delta)
}

// Value returns the counter's current total. Concurrent adds may or may
// not be included (the sum is not a consistent cut across stripes).
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.stripes {
		total += c.stripes[i].v.Load()
	}
	return total
}

// A Gauge is a value that can go up and down. Safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the gauge's current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of histogram buckets: bucket i counts
// observed values v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
// 48 bits of nanoseconds is ~3.25 days, far beyond any latency this
// system produces; larger values clamp into the last bucket.
const histBuckets = 48

// A Histogram counts observations in fixed power-of-two buckets: an
// observed value v lands in the bucket of its bit length, so bucket
// upper bounds are 1, 2, 4, 8, ... Observing is two atomic adds, no
// locks, no allocation. Durations are recorded as nanoseconds.
//
// With EnableExemplars, each bucket can additionally retain one
// exemplar — a concrete (value, trace id) pair linking the bucket to a
// transaction that landed in it (ObserveWithExemplar) — exposed in the
// OpenMetrics exemplar syntax and the JSON snapshot.
type Histogram struct {
	buckets   [histBuckets]atomic.Uint64
	sum       atomic.Uint64
	exemplars atomic.Pointer[exemplarSet]
}

// Exemplar links one observed value to the trace that produced it, so
// a latency bucket on a dashboard resolves to a concrete transaction
// the trace tooling can pull up.
type Exemplar struct {
	// Value is the observed value (nanoseconds for _ns histograms).
	Value uint64 `json:"value"`
	// TraceID is the distributed-trace identity of the observation.
	TraceID uint64 `json:"trace_id"`
}

// exemplarSet is one slot per bucket; slots hold the largest value
// observed for the bucket since enablement (within a power-of-two
// bucket, the worst case is the most useful anchor for tail debugging,
// and the replace-if-larger policy keeps allocation rare at steady
// state).
type exemplarSet struct {
	slots []atomic.Pointer[Exemplar]
}

// EnableExemplars allocates the per-bucket exemplar slots; until it is
// called, ObserveWithExemplar records like plain Observe at identical
// cost. Returns the histogram for chaining at registration sites.
func (h *Histogram) EnableExemplars() *Histogram {
	h.exemplars.CompareAndSwap(nil, &exemplarSet{slots: make([]atomic.Pointer[Exemplar], histBuckets)})
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := bits.Len64(v)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.sum.Add(v)
}

// ObserveWithExemplar records one value and, when exemplars are enabled
// and traceID is non-zero, offers it as the bucket's exemplar (kept if
// it is the largest seen for that bucket).
func (h *Histogram) ObserveWithExemplar(v uint64, traceID uint64) {
	i := bits.Len64(v)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.sum.Add(v)
	es := h.exemplars.Load()
	if es == nil || traceID == 0 {
		return
	}
	if cur := es.slots[i].Load(); cur == nil || v >= cur.Value {
		// Racy replace-if-larger: a concurrent larger store may lose,
		// which costs exemplar quality, never correctness.
		es.slots[i].Store(&Exemplar{Value: v, TraceID: traceID})
	}
}

// ObserveDurationWithExemplar is ObserveWithExemplar for a duration in
// nanoseconds; negative durations (clock steps) clamp to zero.
func (h *Histogram) ObserveDurationWithExemplar(d time.Duration, traceID uint64) {
	if d < 0 {
		d = 0
	}
	h.ObserveWithExemplar(uint64(d), traceID)
}

// ObserveDuration records a duration in nanoseconds. Negative durations
// (clock steps) clamp to zero.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// HistogramSnapshot is a histogram's state at one gather: parallel
// slices of bucket upper bounds and counts, shared by the power-of-two
// Histogram and the finer LogLinearHistogram so exposition and
// quantile estimation work on either.
type HistogramSnapshot struct {
	// Bounds[i] is bucket i's upper bound (exclusive); ascending.
	// Bucket i counts values in [Bounds[i-1], Bounds[i]) (bucket 0
	// starts at 0). The slice is shared and must not be mutated.
	Bounds []uint64
	// Buckets[i] is the count of values in bucket i.
	Buckets []uint64
	Count   uint64
	Sum     uint64
	// Exemplars[i] is bucket i's retained exemplar, nil for buckets
	// without one. The whole slice is nil when the histogram has
	// exemplars disabled. Quantile ignores exemplars entirely.
	Exemplars []*Exemplar
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// values with linear interpolation inside the containing bucket, the
// same estimator Prometheus's histogram_quantile uses. The error is
// bounded by the containing bucket's width: a factor of 2 on the
// power-of-two Histogram, 1/16 of the value on LogLinearHistogram.
// An empty snapshot returns 0.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		fn := float64(n)
		if cum+fn >= rank {
			lo := 0.0
			if i > 0 {
				lo = float64(s.Bounds[i-1])
			}
			frac := (rank - cum) / fn
			if frac < 0 {
				frac = 0
			}
			return lo + (float64(s.Bounds[i])-lo)*frac
		}
		cum += fn
	}
	// Float rounding pushed rank past the total; clamp to the top of
	// the last non-empty bucket.
	for i := len(s.Buckets) - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return float64(s.Bounds[i])
		}
	}
	return 0
}

// pow2Bounds is the shared bound slice for power-of-two histograms.
var pow2Bounds = func() []uint64 {
	b := make([]uint64, histBuckets)
	for i := range b {
		b[i] = BucketBound(i)
	}
	return b
}()

// Snapshot captures the histogram. Not a consistent cut under
// concurrent observation, like every other read here.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Bounds: pow2Bounds, Buckets: make([]uint64, histBuckets)}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	s.Sum = h.sum.Load()
	if es := h.exemplars.Load(); es != nil {
		s.Exemplars = make([]*Exemplar, histBuckets)
		for i := range es.slots {
			s.Exemplars[i] = es.slots[i].Load()
		}
	}
	return s
}

// BucketBound returns the power-of-two Histogram's bucket i upper
// bound (exclusive): 2^i.
func BucketBound(i int) uint64 {
	if i >= 64 {
		return 1 << 63 // saturate; unreachable with histBuckets < 64
	}
	return 1 << uint(i)
}

// Log-linear histogram: each power-of-two range is split into 2^4 = 16
// linear sub-buckets (the HdrHistogram layout), so a recorded value is
// off by at most 1/16 of itself — fine enough for p99/p999 tail SLOs,
// where the plain Histogram's factor-of-2 buckets are too coarse.
const (
	subBucketBits = 4
	subBuckets    = 1 << subBucketBits
	// llEras: era 0 holds exact values [0, 16); era e >= 1 holds
	// [16<<(e-1), 16<<e) in 16 sub-buckets of width 2^(e-1). The top
	// era ends at 2^histBuckets ns (~3.25 days), like Histogram.
	llEras    = histBuckets - subBucketBits + 1
	llBuckets = llEras * subBuckets
)

// llIndex maps a value to its log-linear bucket.
func llIndex(v uint64) int {
	if v < subBuckets {
		return int(v)
	}
	msb := bits.Len64(v) - 1 // >= subBucketBits
	era := msb - subBucketBits + 1
	if era >= llEras {
		return llBuckets - 1 // clamp, like Histogram's last bucket
	}
	sub := int((v >> uint(msb-subBucketBits)) & (subBuckets - 1))
	return era*subBuckets + sub
}

// llBound returns log-linear bucket i's upper bound (exclusive).
func llBound(i int) uint64 {
	era, pos := i/subBuckets, i%subBuckets
	if era == 0 {
		return uint64(pos + 1)
	}
	return uint64(subBuckets+pos+1) << uint(era-1)
}

// llBounds is the shared bound slice for log-linear histograms.
var llBounds = func() []uint64 {
	b := make([]uint64, llBuckets)
	for i := range b {
		b[i] = llBound(i)
	}
	return b
}()

// A LogLinearHistogram counts observations in log-linear buckets: 16
// linear sub-buckets per power of two, so Quantile on its snapshot is
// accurate to ~6% of the value instead of the plain Histogram's factor
// of 2. Observing is two atomic adds, no locks, no allocation; the
// cost is footprint (720 buckets vs 48), so it suits per-run latency
// recording (workload) and singular registered families, not
// wide label vectors. The zero value is ready to use.
type LogLinearHistogram struct {
	buckets [llBuckets]atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value.
func (h *LogLinearHistogram) Observe(v uint64) {
	h.buckets[llIndex(v)].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds. Negative
// durations (clock steps) clamp to zero.
func (h *LogLinearHistogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Count returns the number of observations.
func (h *LogLinearHistogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *LogLinearHistogram) Sum() uint64 { return h.sum.Load() }

// Snapshot captures the histogram state.
func (h *LogLinearHistogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Bounds: llBounds, Buckets: make([]uint64, llBuckets)}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	s.Sum = h.sum.Load()
	return s
}
