// Package metrics is a dependency-free, low-overhead telemetry core for
// the action runtime: counters, gauges and fixed-bucket histograms
// registered in a Registry and exposed in Prometheus text or
// expvar-style JSON form (see Handler).
//
// Design constraints, in order:
//
//  1. The hot path must stay hot. Updating a metric is one atomic
//     add — no locks, no maps, no allocation. Counters are striped
//     across padded cache lines so concurrent writers on different
//     cores do not serialize on one line, and label lookup happens at
//     registration time, never per update (a CounterVec resolves its
//     label tuple to a *Counter once; instrumented code keeps the
//     pointer).
//  2. Reading is rare and may be slow. Gather walks the registry under
//     its mutex, sums counter stripes, snapshots histogram buckets and
//     runs gather-time collector functions (for subsystems like the
//     lock manager that keep per-shard statistics under mutexes they
//     already hold on the hot path — the cheapest "sharded counter"
//     there is).
//  3. Nothing here imports anything above the standard library, so any
//     package in the module can be instrumented without cycles.
//
// Metric names follow the convention mca_<pkg>_<name> (enforced by the
// metricsname analyzer in cmd/mcalint); duration histograms record
// nanoseconds in power-of-two buckets and end in _ns.
package metrics

import (
	"math/bits"
	"math/rand/v2"
	"runtime"
	"sync/atomic"
	"time"
)

// cacheLine is the assumed cache-line size for stripe padding (64 bytes
// on every platform this repo targets; a wrong guess costs false
// sharing, not correctness).
const cacheLine = 64

// stripe is one padded counter cell.
type stripe struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// stripeCount picks how many cells a Counter spreads over: enough that
// concurrent incrementers rarely collide, bounded so a process with
// thousands of counters doesn't drown in padding. Always a power of
// two.
func stripeCount() int {
	n := runtime.GOMAXPROCS(0)
	if n < 4 {
		n = 4
	}
	if n > 64 {
		n = 64
	}
	// Round up to a power of two.
	return 1 << bits.Len(uint(n-1))
}

// A Counter is a monotonically increasing value, striped across padded
// cache lines. Safe for concurrent use; Inc/Add never allocate.
type Counter struct {
	stripes []stripe
	mask    uint64
}

func newCounter() *Counter {
	n := stripeCount()
	return &Counter{stripes: make([]stripe, n), mask: uint64(n - 1)}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta. The stripe is picked by the runtime's per-core fast
// random source: statistically, concurrent writers spread over distinct
// cache lines instead of serializing on one.
func (c *Counter) Add(delta uint64) {
	c.stripes[rand.Uint64()&c.mask].v.Add(delta)
}

// Value returns the counter's current total. Concurrent adds may or may
// not be included (the sum is not a consistent cut across stripes).
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.stripes {
		total += c.stripes[i].v.Load()
	}
	return total
}

// A Gauge is a value that can go up and down. Safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the gauge's current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of histogram buckets: bucket i counts
// observed values v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
// 48 bits of nanoseconds is ~3.25 days, far beyond any latency this
// system produces; larger values clamp into the last bucket.
const histBuckets = 48

// A Histogram counts observations in fixed power-of-two buckets: an
// observed value v lands in the bucket of its bit length, so bucket
// upper bounds are 1, 2, 4, 8, ... Observing is two atomic adds, no
// locks, no allocation. Durations are recorded as nanoseconds.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := bits.Len64(v)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds. Negative durations
// (clock steps) clamp to zero.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// HistogramSnapshot is a histogram's state at one gather.
type HistogramSnapshot struct {
	// Buckets[i] is the count of values with bit length i (upper bound
	// 2^i, exclusive).
	Buckets [histBuckets]uint64
	Count   uint64
	Sum     uint64
}

// snapshot captures the histogram. Not a consistent cut under
// concurrent observation, like every other read here.
func (h *Histogram) snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	s.Sum = h.sum.Load()
	return s
}

// BucketBound returns bucket i's upper bound (exclusive): 2^i.
func BucketBound(i int) uint64 {
	if i >= 64 {
		return 1 << 63 // saturate; unreachable with histBuckets < 64
	}
	return 1 << uint(i)
}
