package metrics

import (
	"math/bits"
	"strings"
	"testing"
)

func TestExemplarDisabledByDefault(t *testing.T) {
	h := &Histogram{}
	h.ObserveWithExemplar(100, 0xdead)
	s := h.Snapshot()
	if s.Exemplars != nil {
		t.Fatalf("exemplars present without EnableExemplars: %v", s.Exemplars)
	}
	if s.Count != 1 {
		t.Fatalf("observation lost: count=%d", s.Count)
	}
}

func TestExemplarReplaceIfLarger(t *testing.T) {
	h := (&Histogram{}).EnableExemplars()
	// Same power-of-two bucket: 100 and 120 share bits.Len64 == 7.
	h.ObserveWithExemplar(100, 1)
	h.ObserveWithExemplar(120, 2)
	h.ObserveWithExemplar(110, 3) // smaller than the held 120: ignored
	s := h.Snapshot()
	i := bits.Len64(100)
	ex := s.Exemplars[i]
	if ex == nil || ex.Value != 120 || ex.TraceID != 2 {
		t.Fatalf("bucket exemplar = %+v, want value 120 trace 2", ex)
	}
	// Zero trace ids never become exemplars.
	h2 := (&Histogram{}).EnableExemplars()
	h2.ObserveWithExemplar(100, 0)
	if ex := h2.Snapshot().Exemplars[i]; ex != nil {
		t.Fatalf("zero-trace observation became exemplar: %+v", ex)
	}
}

// TestQuantileWithExemplars: enabling exemplars must not perturb the
// quantile estimate — Exemplars is side-band data the estimator
// ignores.
func TestQuantileWithExemplars(t *testing.T) {
	plain := &Histogram{}
	ex := (&Histogram{}).EnableExemplars()
	for v := uint64(1); v <= 1000; v++ {
		plain.Observe(v * 1000)
		ex.ObserveWithExemplar(v*1000, v)
	}
	ps, es := plain.Snapshot(), ex.Snapshot()
	if es.Exemplars == nil {
		t.Fatalf("exemplars missing after EnableExemplars")
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if ps.Quantile(q) != es.Quantile(q) {
			t.Fatalf("q%.2f: plain %v != exemplar %v", q, ps.Quantile(q), es.Quantile(q))
		}
	}
	// The retained exemplars resolve to real observations.
	for i, e := range es.Exemplars {
		if e == nil {
			continue
		}
		if e.Value > es.Bounds[i] && i < len(es.Bounds)-1 {
			t.Fatalf("bucket %d exemplar value %d above bound %d", i, e.Value, es.Bounds[i])
		}
		if e.TraceID == 0 {
			t.Fatalf("bucket %d exemplar has zero trace", i)
		}
	}
}

func TestPrometheusExemplarSyntax(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mca_metrics_test_ns", "test histogram").EnableExemplars()
	h.ObserveWithExemplar(100, 0xbeef)
	var sb strings.Builder
	WritePrometheus(&sb, r)
	out := sb.String()
	want := `# {trace_id="000000000000beef"} 100`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing exemplar %q:\n%s", want, out)
	}

	var jb strings.Builder
	WriteJSON(&jb, r)
	if !strings.Contains(jb.String(), `"trace_id": "000000000000beef"`) {
		t.Fatalf("JSON missing exemplar trace id:\n%s", jb.String())
	}
}
