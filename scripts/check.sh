#!/usr/bin/env bash
# check.sh — the full local gate: build, vet, tests (with race), the
# experiment suite, and a short benchmark smoke run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== mcalint =="
go run ./cmd/mcalint -list
go run ./cmd/mcalint ./...

echo "== tests (race) =="
go test -race ./... -count=1

echo "== lock manager (race, -cpu sweep) =="
go test -race -cpu=1,4,8 ./internal/lock/... -count=1

echo "== metrics (race, -cpu sweep) =="
go test -race -cpu=1,4,8 ./internal/metrics/... -count=1

echo "== tests (race, runtime invariants) =="
go test -race -tags invariants ./... -count=1

echo "== commit throughput (smoke, race) =="
go test -race -short -run 'TestCommitThroughputSmoke' ./internal/dist/ -count=1

echo "== envelope codec allocation regression =="
go test -run 'TestEnvelopeCodecAllocs' ./internal/rpc/ -count=1 -v | grep -v '^=== RUN'

echo "== rpc call path (bench smoke) =="
go test -run xxx -bench 'BenchmarkRPCCall' -benchtime 10x -benchmem ./internal/tcpnet/

echo "== loadgen (capacity smoke + report schema) =="
loadgen_json="$(mktemp)"
go run ./cmd/loadgen -smoke -json "$loadgen_json"
go run ./cmd/loadgen -validate "$loadgen_json"
rm -f "$loadgen_json"

echo "== experiments =="
go run ./cmd/experiments -commitjson BENCH_commit.json -rpcjson BENCH_rpc.json -capacityjson BENCH_capacity.json -attribjson BENCH_attrib.json

echo "== examples =="
for ex in quickstart distributedmake meetingscheduler bulletinboard timelines remotemeeting; do
  echo "-- $ex"
  go run "./examples/$ex" > /dev/null
done

echo "== tracecat (quickstart span export) =="
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT
MCA_TRACE_DIR="$tracedir" go run ./examples/quickstart > /dev/null
go run ./cmd/tracecat -check "$tracedir"/node*.jsonl
go run ./cmd/tracecat -chrome "$tracedir/chrome.json" -dot "$tracedir/trace.dot" "$tracedir"/node*.jsonl > /dev/null
go run ./cmd/tracecat -slowest 5 -attrib "$tracedir"/node*.jsonl > /dev/null
test -s "$tracedir/chrome.json" && test -s "$tracedir/trace.dot"

echo "== benchmarks (smoke) =="
go test -run xxx -bench . -benchtime 10x .

echo "ALL CHECKS PASSED"
